"""The noisy scheduler of Section 3.1.

Process ``i``'s ``j``-th operation completes at

    S_ij = Delta_i0 + sum_{k<=j} (Delta_ik + X_ik)

where the ``Delta`` terms are the adversary's (bounded) choices and the
``X_ik`` are i.i.d. noise from an admissible distribution.  The engine keeps
a priority queue of next-completion times and executes operations in
completion order, which realizes the interleaving.

Simultaneity: the model requires that two operations never complete at
exactly the same time.  Continuous noise makes ties probability-zero in
theory, but floating point (and discrete distributions like the geometric or
two-point) can produce exact ties; we therefore add a deterministic-sized,
randomly-drawn dither of at most 1e-12 to every completion time, mirroring
the paper's "dithering the starting times ... by some small epsilon".
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.noise.distributions import (
    NoiseDistribution,
    PerOpKindNoise,
    validate_noise,
)
from repro.sched.delta import DeltaSchedule, ZeroDelta
from repro.types import OpKind

NoiseLike = Union[NoiseDistribution, PerOpKindNoise]


class NoisyScheduler:
    """Produces operation completion times for the noisy model.

    Args:
        noise: the noise distribution F (or one per operation kind).
        delta: the adversary's delay schedule (default: none).
        rng: generator driving the noise.
        allow_degenerate: permit distributions concentrated on a point,
            which the model forbids — used only to reproduce lockstep
            counterexamples.
        tie_dither: magnitude of the anti-simultaneity dither.
    """

    def __init__(self, noise: NoiseLike,
                 rng: np.random.Generator,
                 delta: Optional[DeltaSchedule] = None,
                 allow_degenerate: bool = False,
                 tie_dither: float = 1e-12) -> None:
        if isinstance(noise, PerOpKindNoise):
            self.noise = noise
        else:
            self.noise = PerOpKindNoise(noise)
        if not allow_degenerate:
            self.noise.validate()
        else:
            for dist in (self.noise.read, self.noise.write):
                if dist.min_value < 0:
                    raise ConfigurationError(
                        f"{dist} may produce negative delays"
                    )
        self.delta = delta if delta is not None else ZeroDelta()
        self.rng = rng
        self.tie_dither = tie_dither

    def start_time(self, pid: int) -> float:
        """Delta_i0 for process ``pid``."""
        return self.delta.start(pid)

    def next_time(self, pid: int, op_index: int, kind: OpKind,
                  prev_time: float) -> float:
        """Completion time of ``pid``'s ``op_index``-th operation.

        ``prev_time`` is the completion time of the previous operation (or
        the start time for ``op_index == 1``).
        """
        inc = self.delta.delay(pid, op_index)
        inc += self.noise.for_kind(kind).sample(self.rng)
        if self.tie_dither:
            inc += float(self.rng.uniform(0.0, self.tie_dither))
        return prev_time + inc

    def presample(self, n: int, max_ops: int,
                  kind: OpKind = OpKind.READ) -> np.ndarray:
        """Pre-draw an ``(n, max_ops)`` matrix of completion times.

        Exploits the obliviousness of the model: times do not depend on the
        algorithm's behaviour, so the whole schedule can be drawn up front.
        Used by the fast engine.  A single operation kind is assumed (the
        Figure-1 setting); per-kind noise requires the event-driven engine.
        """
        dist = self.noise.for_kind(kind)
        incs = dist.sample_array(self.rng, (n, max_ops))
        if self.tie_dither:
            incs = incs + self.rng.uniform(0.0, self.tie_dither, size=incs.shape)
        for pid in range(n):
            d = self.delta.delays_array(pid, max_ops)
            incs[pid] += d
        times = np.cumsum(incs, axis=1)
        starts = np.array([self.delta.start(pid) for pid in range(n)])
        return times + starts[:, None]


class PresampledScheduler:
    """A scheduler that replays an explicit completion-time matrix.

    Lets the event-driven reference engine and the vectorized fast engine
    consume *identical* schedules, which is how the two are cross-validated
    operation-for-operation.
    """

    def __init__(self, times: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        if times.ndim != 2:
            raise ConfigurationError("times must be a 2-D (n, max_ops) array")
        self.times = times

    @property
    def n(self) -> int:
        return self.times.shape[0]

    @property
    def max_ops(self) -> int:
        return self.times.shape[1]

    def start_time(self, pid: int) -> float:
        return 0.0

    def next_time(self, pid: int, op_index: int, kind: OpKind,
                  prev_time: float) -> float:
        if op_index > self.max_ops:
            raise ConfigurationError(
                f"presampled schedule exhausted: p{pid} op {op_index} "
                f"> horizon {self.max_ops}"
            )
        return float(self.times[pid, op_index - 1])
