"""Adversary-controlled delay schedules (the Delta_ij of Section 3.1).

The noisy-scheduling adversary chooses, up front (obliviously):

* an arbitrary starting time ``Delta_i0`` for each process, and
* a delay ``Delta_ij`` in ``[0, M]`` before each operation.

These classes package those choices.  All of them are oblivious — they may
depend on (pid, op index) but not on the execution — matching the model.
The paper's Figure-1 simulations use all-equal start times dithered by a
uniform (0, 1e-8) epsilon and zero delays.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


class DeltaSchedule(abc.ABC):
    """The adversary's deterministic part of the schedule."""

    #: Upper bound M on per-operation delays (Section 3.1 requires one).
    bound: float = 0.0

    @abc.abstractmethod
    def start(self, pid: int) -> float:
        """Delta_i0: the starting time of process ``pid``."""

    @abc.abstractmethod
    def delay(self, pid: int, op_index: int) -> float:
        """Delta_ij for ``j = op_index`` (1-based); must lie in [0, bound]."""

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        """Vectorized ``[delay(pid, 1), ..., delay(pid, n_ops)]``."""
        return np.array([self.delay(pid, j) for j in range(1, n_ops + 1)])


class ZeroDelta(DeltaSchedule):
    """No adversarial delays; all processes start at time 0.

    This is the Figure-1 setting (modulo the start dither, which the noisy
    scheduler adds separately via :class:`DitheredStart`).
    """

    bound = 0.0

    def start(self, pid: int) -> float:
        return 0.0

    def delay(self, pid: int, op_index: int) -> float:
        return 0.0

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.zeros(n_ops)


class ConstantDelta(DeltaSchedule):
    """The same fixed delay before every operation of every process."""

    def __init__(self, delay: float, start_time: float = 0.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self._delay = delay
        self._start = start_time
        self.bound = delay

    def start(self, pid: int) -> float:
        return self._start

    def delay(self, pid: int, op_index: int) -> float:
        return self._delay

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.full(n_ops, self._delay)


class StaggeredStart(DeltaSchedule):
    """Processes start at ``pid * stagger``; no per-operation delays.

    Models one team getting a head start — useful for tests that a leading
    pack decides immediately and laggards adopt its value.
    """

    bound = 0.0

    def __init__(self, stagger: float) -> None:
        if stagger < 0:
            raise ConfigurationError(f"stagger must be >= 0, got {stagger}")
        self.stagger = stagger

    def start(self, pid: int) -> float:
        return pid * self.stagger

    def delay(self, pid: int, op_index: int) -> float:
        return 0.0

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.zeros(n_ops)


class DitheredStart(DeltaSchedule):
    """All-equal starts dithered by a tiny random epsilon (Figure 1).

    The paper: "The starting times for all processes are the same except for
    a small random epsilon, generated uniformly in the range (0, 1e-8)."
    The dither is drawn once per process at construction (oblivious).
    """

    bound = 0.0

    def __init__(self, n: int, rng: np.random.Generator,
                 epsilon: float = 1e-8, base: float = 0.0) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        self._starts = base + rng.uniform(0.0, epsilon, size=n)

    def start(self, pid: int) -> float:
        return float(self._starts[pid])

    def delay(self, pid: int, op_index: int) -> float:
        return 0.0

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.zeros(n_ops)


class RandomDelta(DeltaSchedule):
    """Oblivious random delays, uniform in [0, M], pre-drawn per (pid, op).

    A stand-in for an adversary that varies its delays arbitrarily within
    the bound; drawing them obliviously at construction keeps the model
    honest (the adversary of Section 3.1 commits to its delays up front).
    """

    def __init__(self, bound: float, rng: np.random.Generator,
                 n: int, max_ops: int, starts: Optional[Sequence[float]] = None) -> None:
        if bound < 0:
            raise ConfigurationError(f"bound must be >= 0, got {bound}")
        self.bound = bound
        self._table = rng.uniform(0.0, bound, size=(n, max_ops))
        if starts is None:
            self._starts = np.zeros(n)
        else:
            self._starts = np.asarray(starts, dtype=float)
        self._max_ops = max_ops

    def start(self, pid: int) -> float:
        return float(self._starts[pid])

    def delay(self, pid: int, op_index: int) -> float:
        # Beyond the pre-drawn horizon, repeat the last column (still
        # oblivious: a fixed deterministic rule of (pid, op_index)).
        col = min(op_index - 1, self._max_ops - 1)
        return float(self._table[pid, col])

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        if n_ops <= self._max_ops:
            return self._table[pid, :n_ops].copy()
        pad = np.full(n_ops - self._max_ops, self._table[pid, -1])
        return np.concatenate([self._table[pid], pad])
