"""The statistical adversary of Section 10.

The core model bounds each adversary delay individually: 0 <= Delta_ij <= M.
Section 10 asks what happens under the weaker *statistical* constraint

    sum_{j <= r} Delta_ij <= r * M        for every r,

which permits occasional delays far above M as long as the running average
stays bounded — while still excluding the Zeno-like schedules that starve
the noise of scale.  The paper conjectures O(log n) termination still
holds; the EXP-STAT experiment measures it.

:class:`StatisticalDelta` wraps any proposed delay sequence and *enforces*
the constraint by clipping: a requested delay is granted up to the current
budget ``r*M - spent``.  Two built-in proposal styles produce interesting
schedules:

* ``"bursts"`` — zero delay most of the time, a large burst every ``k``
  operations (an adversary saving its budget to shove one process);
* ``"frontrunner"`` — bursts targeted at low pids only, modelling an
  adversary that repeatedly stalls the same victims.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sched.delta import DeltaSchedule


class StatisticalDelta(DeltaSchedule):
    """Delays constrained by a running-average budget sum <= r*M.

    Args:
        mean_bound: the M of the constraint.
        style: ``"bursts"`` or ``"frontrunner"`` (see module docstring).
        burst_every: operations between bursts.
        burst_scale: requested burst size, in multiples of ``mean_bound *
            burst_every`` (1.0 requests exactly the accumulated budget).
        n: process count (used by ``"frontrunner"`` targeting).

    The per-operation values are deterministic in (pid, op index) — the
    adversary remains oblivious, as the model requires.
    """

    def __init__(self, mean_bound: float, style: str = "bursts",
                 burst_every: int = 8, burst_scale: float = 1.0,
                 n: Optional[int] = None) -> None:
        if mean_bound < 0:
            raise ConfigurationError(f"mean_bound must be >= 0, got {mean_bound}")
        if style not in ("bursts", "frontrunner"):
            raise ConfigurationError(f"unknown style {style!r}")
        if burst_every < 1:
            raise ConfigurationError(f"burst_every must be >= 1, got {burst_every}")
        self.mean_bound = mean_bound
        self.style = style
        self.burst_every = burst_every
        self.burst_scale = burst_scale
        self.n = n
        self.bound = float("inf")  # individual delays are unbounded
        self._spent: Dict[int, float] = {}
        self._ops: Dict[int, int] = {}

    def start(self, pid: int) -> float:
        return 0.0

    def _requested(self, pid: int, op_index: int) -> float:
        if op_index % self.burst_every != 0:
            return 0.0
        if self.style == "frontrunner" and self.n is not None:
            if pid >= max(1, self.n // 2):
                return 0.0
        return self.mean_bound * self.burst_every * self.burst_scale

    def delay(self, pid: int, op_index: int) -> float:
        """Grant the requested delay, clipped to the remaining budget.

        Statefulness note: the engines request each (pid, j) exactly once
        and in order, which keeps the running budget exact; out-of-order
        replay should use :meth:`delays_array`.
        """
        spent = self._spent.get(pid, 0.0)
        budget = op_index * self.mean_bound - spent
        granted = min(self._requested(pid, op_index), max(budget, 0.0))
        self._spent[pid] = spent + granted
        self._ops[pid] = op_index
        return granted

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        out = np.empty(n_ops)
        spent = 0.0
        for j in range(1, n_ops + 1):
            budget = j * self.mean_bound - spent
            granted = min(self._requested(pid, j), max(budget, 0.0))
            spent += granted
            out[j - 1] = granted
        return out

    def verify_constraint(self, pid: int, n_ops: int,
                          tol: float = 1e-9) -> bool:
        """Check sum_{j<=r} Delta_ij <= r*M for every prefix r."""
        delays = self.delays_array(pid, n_ops)
        prefix = np.cumsum(delays)
        rs = np.arange(1, n_ops + 1)
        return bool((prefix <= rs * self.mean_bound + tol).all())
