"""Hybrid quantum/priority-based uniprocessor scheduling (Sections 3.2, 7).

Processes time-share one CPU under a pre-emptive scheduler:

* a running process may be pre-empted **at any time** by a process of
  strictly higher priority;
* it may be pre-empted by a process of **equal** priority only once it has
  completed its *quantum* — a minimum number of operations since it last
  woke up;
* it is never displaced by a lower-priority process while it is alive;
* a process need not start the protocol at a quantum boundary: the adversary
  chooses how much of its first quantum was already consumed by other work.

Theorem 14: with quantum >= 8, every process running lean-consensus decides
after at most 12 of its own operations.  The experiments verify this by
exhaustive adversarial search over all legal pre-emption choices (small n)
and by randomized schedules (larger n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SchedulerError


@dataclass
class HybridState:
    """Mutable scheduler bookkeeping, snapshot-able for exhaustive search."""

    #: pid currently holding the CPU (None before the first dispatch).
    current: Optional[int] = None
    #: Operations the current process completed since it last woke up,
    #: including any adversary-assigned initial quantum debt.
    used_in_quantum: int = 0

    def key(self) -> Tuple:
        return (self.current, self.used_in_quantum)


class HybridScheduler:
    """Legality oracle for hybrid-scheduled executions.

    Args:
        priorities: ``priorities[pid]`` is the priority of ``pid`` (larger
            means more important).
        quantum: the quantum length Q (operations).
        initial_used: per-pid count of quantum operations already consumed
            before the process first runs the protocol ("it may have used up
            some or all of its quantum performing other work").  Defaults
            to 0 for all.

    The scheduler itself makes no choices; it reports, in each state, the
    set of processes that may legally execute the next operation.  Drivers
    (random, scripted, exhaustive-adversarial) pick among them.
    """

    def __init__(self, priorities: Sequence[int], quantum: int,
                 initial_used: Optional[Dict[int, int]] = None,
                 debt_policy: str = "holder") -> None:
        if quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {quantum}")
        if debt_policy not in ("holder", "per-process"):
            raise ConfigurationError(
                f"debt_policy must be 'holder' or 'per-process', "
                f"got {debt_policy!r}"
            )
        self.priorities = list(priorities)
        self.quantum = quantum
        self.initial_used = dict(initial_used or {})
        self.debt_policy = debt_policy
        for pid, used in self.initial_used.items():
            if not 0 <= used <= quantum:
                raise ConfigurationError(
                    f"initial_used[{pid}]={used} outside [0, {quantum}]"
                )
        self.state = HybridState()
        self._woken: set[int] = set()

    @property
    def n(self) -> int:
        return len(self.priorities)

    def legal_next(self, alive: Sequence[int]) -> List[int]:
        """Pids that may legally execute the next operation.

        ``alive`` is the set of processes still running the protocol
        (undecided, unhalted).  Rules:

        * if no process holds the CPU, or the holder has finished, any alive
          process may be dispatched;
        * otherwise the holder may continue; a strictly-higher-priority
          process may pre-empt; an equal-priority process may pre-empt only
          if the holder has exhausted its quantum.
        """
        alive_list = sorted(alive)
        cur = self.state.current
        if cur is None or cur not in alive_list:
            return alive_list
        cur_prio = self.priorities[cur]
        exhausted = self.state.used_in_quantum >= self.quantum
        legal = [cur]
        for pid in alive_list:
            if pid == cur:
                continue
            prio = self.priorities[pid]
            if prio > cur_prio or (prio == cur_prio and exhausted):
                legal.append(pid)
        return sorted(legal)

    def dispatch(self, pid: int, alive: Sequence[int]) -> None:
        """Record that ``pid`` executes the next operation.

        Raises:
            SchedulerError: if ``pid`` is not legal in the current state.
        """
        if pid not in self.legal_next(alive):
            raise SchedulerError(
                f"p{pid} may not run: current={self.state.current} "
                f"used={self.state.used_in_quantum}/{self.quantum}"
            )
        if pid != self.state.current:
            # A (re)wake: fresh quantum, except for the adversary's initial
            # debt, whose scope depends on the policy.
            #
            # * "holder" (default; matches the Theorem-14 proof, where a
            #   pre-empting process is "at the start of a quantum"): only
            #   the process holding the CPU when the protocol starts — the
            #   very first dispatch — can be mid-quantum.
            # * "per-process" (a more adversarial reading of Section 3.2):
            #   every process may begin the protocol mid-quantum at its
            #   first wake.  Under this reading the 12-operation bound of
            #   Theorem 14 degrades to 16 operations (see EXPERIMENTS.md).
            if pid in self._woken:
                self.state.used_in_quantum = 0
            else:
                first_dispatch_ever = not self._woken
                if self.debt_policy == "per-process" or first_dispatch_ever:
                    self.state.used_in_quantum = self.initial_used.get(pid, 0)
                else:
                    self.state.used_in_quantum = 0
                self._woken.add(pid)
            self.state.current = pid
        self.state.used_in_quantum += 1

    # -- snapshots for exhaustive search --------------------------------

    def snapshot(self) -> Tuple:
        return (self.state.current, self.state.used_in_quantum,
                frozenset(self._woken))

    def restore(self, snap: Tuple) -> None:
        self.state.current, self.state.used_in_quantum, woken = snap
        self._woken = set(woken)
