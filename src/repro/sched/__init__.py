"""Schedulers: who executes the next operation, and when.

Two families, matching the paper's two models:

* :mod:`repro.sched.noisy` — Section 3.1's noisy scheduling: the adversary
  fixes start times and bounded per-operation delays, random noise perturbs
  them, and operations interleave in completion-time order.
* :mod:`repro.sched.hybrid` — Section 3.2's hybrid quantum/priority
  pre-emptive uniprocessor scheduling.

Plus :mod:`repro.sched.pickers`: simple step-choice strategies (random,
round-robin, scripted, adversarial heuristics) for the sequential engine and
the property tests, where the *schedule itself* is the test input.
"""

from repro.sched.delta import (
    ConstantDelta,
    DeltaSchedule,
    DitheredStart,
    RandomDelta,
    StaggeredStart,
    ZeroDelta,
)
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.sched.hybrid import HybridScheduler, HybridState
from repro.sched.pickers import (
    AlternatingPicker,
    LaggardPicker,
    LeaderPicker,
    RandomPicker,
    RoundRobinPicker,
    ScriptedPicker,
)

__all__ = [
    "AlternatingPicker",
    "ConstantDelta",
    "DeltaSchedule",
    "DitheredStart",
    "HybridScheduler",
    "HybridState",
    "LaggardPicker",
    "LeaderPicker",
    "NoisyScheduler",
    "PresampledScheduler",
    "RandomDelta",
    "RandomPicker",
    "RoundRobinPicker",
    "ScriptedPicker",
    "StaggeredStart",
    "ZeroDelta",
]
