"""Step-choice strategies for the sequential (choice-based) engine.

A picker chooses which enabled process executes the next operation.  These
implement common schedules for tests and experiments; the hypothesis
property tests additionally generate :class:`ScriptedPicker` scripts as
data, making the schedule itself the fuzzed input.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SchedulerError


class Picker(abc.ABC):
    """Chooses the next process to step among the enabled ones."""

    @abc.abstractmethod
    def pick(self, enabled: Sequence[int]) -> int:
        """Return one pid from ``enabled`` (non-empty, sorted ascending)."""


class RandomPicker(Picker):
    """Uniformly random choice — the discrete-uniform scheduler.

    The paper notes (Section 9) that exponential(1) noise "is also
    equivalent to generating a schedule by choosing one process uniformly at
    random for each time unit"; this picker is that schedule's sequential
    form.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def pick(self, enabled: Sequence[int]) -> int:
        return int(enabled[int(self.rng.integers(0, len(enabled)))])


class RoundRobinPicker(Picker):
    """Cycles through processes in pid order — a perfectly fair lockstep.

    Under this scheduler lean-consensus with a split input *can* run
    forever; tests use it (with an op budget) to demonstrate why the noise
    assumption is load-bearing.
    """

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def pick(self, enabled: Sequence[int]) -> int:
        if self._last is None:
            choice = enabled[0]
        else:
            later = [p for p in enabled if p > self._last]
            choice = later[0] if later else enabled[0]
        self._last = choice
        return int(choice)


class AlternatingPicker(Picker):
    """Alternates between the lowest and highest enabled pid."""

    def __init__(self) -> None:
        self._flip = False

    def pick(self, enabled: Sequence[int]) -> int:
        self._flip = not self._flip
        return int(enabled[0] if self._flip else enabled[-1])


class ScriptedPicker(Picker):
    """Follows an explicit script of pids; used by the hypothesis tests.

    Script entries that are not currently enabled fall back to the entry
    modulo the enabled count, so arbitrary integer scripts are always valid
    schedules (a requirement for unbiased property-based generation).
    """

    def __init__(self, script: Sequence[int],
                 exhausted: str = "cycle") -> None:
        if not script:
            raise SchedulerError("script must be non-empty")
        if exhausted not in ("cycle", "first"):
            raise SchedulerError(f"unknown exhausted policy {exhausted!r}")
        self.script = list(script)
        self.exhausted = exhausted
        self._pos = 0

    def pick(self, enabled: Sequence[int]) -> int:
        if self._pos >= len(self.script):
            if self.exhausted == "first":
                return int(enabled[0])
            self._pos = 0
        raw = self.script[self._pos]
        self._pos += 1
        if raw in enabled:
            return int(raw)
        return int(enabled[raw % len(enabled)])


class LeaderPicker(Picker):
    """Always steps the process that is furthest ahead (by a score).

    With the default score (operations executed) this accelerates one
    process to a decision — a best-case schedule that terminates in the
    minimum 8-12 operations.
    """

    def __init__(self, score: Callable[[int], float]) -> None:
        self.score = score

    def pick(self, enabled: Sequence[int]) -> int:
        return int(max(enabled, key=lambda pid: (self.score(pid), -pid)))


class LaggardPicker(Picker):
    """Always steps the process that is furthest behind.

    The mirror image of :class:`LeaderPicker`: a quasi-adversarial schedule
    that keeps the pack together and prolongs the race (it is exactly the
    lockstep round-robin when all processes advance at the same rate).
    """

    def __init__(self, score: Callable[[int], float]) -> None:
        self.score = score

    def pick(self, enabled: Sequence[int]) -> int:
        return int(min(enabled, key=lambda pid: (self.score(pid), pid)))
