"""Failure models: random halting (Section 3.1.2) and adaptive crashes (§10).

The core model kills each process independently with probability ``h(n)``
per operation (``H_ij`` is infinite with probability ``h(n)``); Section 10
discusses adversarial crash failures, bounded in number, that may target
the current leader.
"""

from repro.failures.injection import (
    AdaptiveCrashAdversary,
    FailureModel,
    KillLeaderAdversary,
    NoFailures,
    PresampledDeaths,
    RandomHalting,
    ScriptedFailures,
)

__all__ = [
    "AdaptiveCrashAdversary",
    "FailureModel",
    "KillLeaderAdversary",
    "NoFailures",
    "PresampledDeaths",
    "RandomHalting",
    "ScriptedFailures",
]
