"""Failure injection for the simulation engines.

Two interfaces:

* :class:`FailureModel` — per-operation random halting, evaluated just
  before a process executes an operation (matching the H_ij of
  Section 3.1.2: a process that halts before its j-th operation never
  performs it).
* :class:`AdaptiveCrashAdversary` — a strategy with a crash budget that
  observes the execution (process rounds, decisions) and may kill processes
  at operation boundaries.  This models the non-random failures discussed in
  Section 10, where restarting the Theorem-12 argument after each crash
  yields the O(f log n) bound.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError


class FailureModel(abc.ABC):
    """Decides, per operation, whether the process halts first."""

    @abc.abstractmethod
    def halts_before(self, pid: int, op_index: int) -> bool:
        """True if ``pid`` halts before its ``op_index``-th operation."""


class NoFailures(FailureModel):
    """The failure-free model (h(n) = 0)."""

    def halts_before(self, pid: int, op_index: int) -> bool:
        return False


class RandomHalting(FailureModel):
    """Independent halting with probability ``h`` per operation.

    The paper requires ``h = h(n) = o(1)`` for the termination bound to be
    meaningful (with constant h all processes die after O(log n) operations
    in expectation — which Theorem 10 also counts as the race ending).
    """

    def __init__(self, h: float, rng: np.random.Generator) -> None:
        if not 0.0 <= h < 1.0:
            raise ConfigurationError(f"h must be in [0,1), got {h}")
        self.h = h
        self.rng = rng

    def halts_before(self, pid: int, op_index: int) -> bool:
        if self.h == 0.0:
            return False
        return bool(self.rng.random() < self.h)

    def presample_death_ops(self, n: int) -> np.ndarray:
        """Vectorized: for each pid, the 1-based op index before which it
        dies (a geometric draw), or a huge sentinel when it survives
        "forever".  Used by the fast engine."""
        if self.h == 0.0:
            return np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        return self.rng.geometric(self.h, size=n).astype(np.int64)


class PresampledDeaths(FailureModel):
    """Replays a per-process death-op schedule on the event engines.

    ``death_ops[pid]`` is the 1-based operation index before which the
    process halts (a huge sentinel marks survivors) — the same contract as
    the fast engine's ``death_ops`` argument, so a schedule compiled by
    :func:`repro.api.compile.compile_death_ops` injects *identical*
    failures into both engines.  This is what the differential oracle uses
    to cross-validate crash handling.
    """

    def __init__(self, death_ops) -> None:
        self.death_ops = np.asarray(death_ops, dtype=np.int64)
        if self.death_ops.ndim != 1:
            raise ConfigurationError("death_ops must be a 1-D array")
        if (self.death_ops < 1).any():
            raise ConfigurationError("death ops are 1-based; got index < 1")

    def halts_before(self, pid: int, op_index: int) -> bool:
        return op_index >= int(self.death_ops[pid])


class ScriptedFailures(FailureModel):
    """Kills specific (pid, op_index) points; for deterministic tests."""

    def __init__(self, deaths: Dict[int, int]) -> None:
        for pid, op_index in deaths.items():
            if op_index < 1:
                raise ConfigurationError(
                    f"death op for p{pid} must be >= 1, got {op_index}"
                )
        self.deaths = dict(deaths)

    def halts_before(self, pid: int, op_index: int) -> bool:
        return self.deaths.get(pid) == op_index


class AdaptiveCrashAdversary(abc.ABC):
    """An adaptive adversary with a crash budget (Section 10).

    The engine calls :meth:`consider` before every operation with a view of
    the execution; the adversary returns the set of pids to crash now.  The
    total number of crashes is capped by ``budget``.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self.crashed: Set[int] = set()

    @property
    def remaining(self) -> int:
        return self.budget - len(self.crashed)

    def consider(self, view: "ExecutionView") -> Set[int]:
        """Return pids to crash before the next operation executes."""
        if self.remaining <= 0:
            return set()
        victims = self._choose(view) - self.crashed
        victims = set(list(sorted(victims))[: self.remaining])
        self.crashed |= victims
        return victims

    @abc.abstractmethod
    def _choose(self, view: "ExecutionView") -> Set[int]:
        """Strategy hook: pick victims (may exceed budget; it is clipped)."""


class ExecutionView:
    """What an adaptive adversary may observe: rounds, preferences, leader.

    A thin read-only facade over the engine's machines; adaptive adversaries
    in this model are strong (full-information), which makes the measured
    O(f log n) recovery bound conservative.
    """

    def __init__(self, rounds: Callable[[int], int],
                 alive: Callable[[], Sequence[int]],
                 decided: Callable[[], Sequence[int]]) -> None:
        self.round_of = rounds
        self.alive_pids = alive
        self.decided_pids = decided

    def leader(self) -> Optional[int]:
        """The alive process with the largest round (ties to smaller pid)."""
        alive = list(self.alive_pids())
        if not alive:
            return None
        return max(alive, key=lambda pid: (self.round_of(pid), -pid))


class KillLeaderAdversary(AdaptiveCrashAdversary):
    """Crashes the current leader whenever it pulls ``lead`` rounds ahead.

    This is the natural worst case for a race-based protocol: every time a
    winner is about to emerge, it is removed.  With a budget of f crashes
    the protocol restarts its race at most f times, giving the O(f log n)
    behaviour the failures experiment measures.
    """

    def __init__(self, budget: int, lead: int = 2) -> None:
        super().__init__(budget)
        if lead < 1:
            raise ConfigurationError(f"lead must be >= 1, got {lead}")
        self.lead = lead

    def _choose(self, view: ExecutionView) -> Set[int]:
        alive = list(view.alive_pids())
        if len(alive) < 2 or view.decided_pids():
            return set()
        rounds = sorted((view.round_of(pid), pid) for pid in alive)
        (second_round, _), (top_round, top_pid) = rounds[-2], rounds[-1]
        if top_round - second_round >= self.lead:
            return {top_pid}
        return set()
