"""Spec compilation: assemble machines, memory, scheduler, and engine.

:func:`compile_spec` turns a :class:`~repro.api.spec.TrialSpec` plus a seed
into a ready-to-run :class:`CompiledTrial`; :func:`run_trial` is the
one-call form.  The compiler reproduces the exact random-stream spawn
discipline of the historical ``run_noisy_trial`` / ``run_step_trial`` /
``run_hybrid_trial`` entry points, so a legacy call and its spec-based
equivalent produce bit-identical :class:`~repro.sim.results.TrialResult`
values from the same seed — the property the wrapper-equivalence tests
pin down.

Engine selection lives in :func:`resolve_engine_info`: the vectorized
replay family of :data:`repro.sim.fast.FAST_VARIANTS` serves every noisy
spec without an adaptive adversary, recorder, or per-kind write
noise (round caps and operation budgets replay exactly since PR 7); ``engine="auto"`` additionally keeps small n on the event engine,
promotes large trial batches to the trial-parallel lockstep kernel
(:mod:`repro.sim.kernel`), and records *why* it fell back in
``TrialResult.engine_reason``.

Fast-family sampling runs in one of two lanes:

* the **inverse lane** (:mod:`repro.sim.sampler`) for zero/dithered start
  schedules over distributions with a closed-form quantile function —
  every Figure-1 distribution: exponential, shifted exponential, uniform,
  geometric, two-point, and (finite-bound) truncated normal — one
  uniform stream per trial, column-major draws, exact horizon extension;
* the **legacy lane** — the PR-3 row-major
  :meth:`~repro.sched.noisy.NoisyScheduler.presample` discipline — for
  everything else.

The lane is a property of the spec, shared by the scalar, trial-batched,
and kernel paths, which keeps all three bit-identical to each other.

:func:`run_trials` / :func:`run_trials_frame` are the chunk-level entry
points used by the batch runner; the fast/kernel list path is the frame
path with :meth:`~repro.sim.frame.ResultFrame.to_trial_results` applied
at the edge (one replay implementation, no duplicated chunk logic).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro._seedhash import (
    ReusablePCG64,
    SeedBlock,
    block_spawn_keys,
    pcg64_states,
)
from repro.core.invariants import check_agreement, check_validity
from repro.errors import ConfigurationError
from repro.failures.injection import FailureModel, NoFailures, RandomHalting
from repro.noise.distributions import PerOpKindNoise
from repro.sched.delta import DeltaSchedule
from repro.sched.hybrid import HybridScheduler
from repro.sched.noisy import NoisyScheduler
from repro.sim.build import (
    check_result,
    make_machines,
    make_memory_for,
)
from repro.sim.backend import backend_spec_gap, backend_unavailability
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import (
    FAST_VARIANTS,
    _replay_optimized,
    lean_horizon_ops,
    replay,
    replay_lean,
)
from repro.sim.frame import (
    FrameBuilder,
    ResultFrame,
    derive_decision_fields,
)
from repro.sim.kernel import _PACK_MAX_N, lean_flip_bound, replay_chunk
from repro.sim.results import TrialResult
from repro.sim.sampler import (
    draw_starts,
    draw_times,
    extend_times,
    inverse_sampler_for,
    quantize_times,
)
from repro.types import Decision
from repro.api.spec import (
    FailureSpec,
    HybridModelSpec,
    NoisyModelSpec,
    StepModelSpec,
    TrialSpec,
)

#: ``engine="auto"`` keeps n below this on the event engine: the fast
#: engine's fixed costs (full-horizon presample + argsort) only pay off
#: once the event engine's per-op heap traffic dominates.
FAST_AUTO_MIN_N = 256

#: ``engine="auto"`` promotes a batch to the lockstep kernel once a
#: chunk carries at least this many trials (below it, the kernel's
#: per-step vector dispatch costs more than the scalar replay saves).
KERNEL_AUTO_MIN_TRIALS = 512

#: ... and only while the process axis stays narrow on the *legacy*
#: sampling lane, whose full-horizon presample cost scales with n
#: regardless of engine and whose measured cross-over on the Figure-1
#: workload sits between n=128 (kernel 1.9x ahead) and n=300 (behind).
KERNEL_AUTO_MAX_N = 128

#: Inverse-lane specs promote much wider: the PR-7 tournament min makes
#: the per-event pick O(log n) (a 16-ary static tree over the process
#: axis, refreshed along one root path per transition), and the
#: mantissa-packed pid plane now covers n up to 2048.  The measured
#: n=1024 scaling workload (``python -m repro bench``) has the kernel
#: ahead of the trial-batched frame path, so auto promotes inverse-lane
#: batches through n=1024.  Since every Figure-1 distribution now has an
#: inverse-lane sampler (geometric, two-point, and truncated normal
#: included), this is the operative cap for the whole paper grid.
KERNEL_AUTO_MAX_N_INVERSE = 1024

#: Cap on schedule-tensor elements materialized per fast batch sub-chunk
#: (~128 MB of float64), bounding the batched argsort's working set.
_FAST_CHUNK_ELEMENTS = 16_000_000

#: Cap on schedule-tensor elements materialized per *kernel* sub-chunk
#: (~640 MB of float64).  The kernel never argsorts the tensor — it
#: gathers one column per lockstep transition — so it tolerates a far
#: larger working set than the fast path, and its per-iteration cost is
#: interpreter-dispatch dominated: block width divides straight into
#: per-trial cost.  Wide-n blocks (n=1024, k=68) need ~72M elements to
#: reach the lane cap below; do not re-tie this to _FAST_CHUNK_ELEMENTS.
_KERNEL_CHUNK_ELEMENTS = 80_000_000

#: Cap on the kernel's (processes x trials) lockstep state width.  At
#: n=1024 this admits 1024-trial blocks, where the measured lockstep
#: throughput (~105 trials/s) clears the frame path (~66 trials/s); at
#: 1 << 19 the 512-trial blocks lose to it (~59 trials/s).
_KERNEL_LANE_ELEMENTS = 1 << 20

#: Inverse-lane horizon growth: doublings of the initial horizon before
#: the schedule is declared degenerate (matches the legacy retry reach).
_INVERSE_GROWTH_CAP = 9


@dataclass
class CompiledTrial:
    """A spec bound to a seed, assembled and ready to execute once.

    Attributes:
        spec: the trial spec this was compiled from.
        engine: the engine that will actually run (``"auto"`` resolved):
            ``"fast"``, ``"kernel"``, ``"event"``, ``"step"``, or
            ``"hybrid"``.  A single compiled trial has no batch to step
            in lockstep, so ``"kernel"`` executes the scalar fast replay
            (bit-identical by construction).
        machines: the instantiated process machines (``None`` for the fast
            engine, which replays a closed-form schedule instead).
        memory: the assembled shared memory (``None`` for the fast engine).
        engine_reason: why ``"auto"`` fell back to the event engine, when
            it did (mirrored onto ``TrialResult.engine_reason``), and/or
            why a requested array backend degraded to numpy.
        backend: the resolved array backend (``None`` for the step and
            hybrid models, where the field does not apply).  Like the
            ``"kernel"`` engine label on a single compiled trial, this
            records the *resolution*: the scalar replay a single kernel
            trial executes is bit-identical to every bitwise backend
            lane by construction.
    """

    spec: TrialSpec
    engine: str
    machines: Optional[list] = None
    memory: Optional[object] = None
    engine_reason: Optional[str] = None
    backend: Optional[str] = None
    _execute: Callable[[], TrialResult] = field(default=None, repr=False)

    def run(self) -> TrialResult:
        """Execute the trial and return its result (call once)."""
        result = self._execute()
        result.engine = self.engine
        result.engine_reason = self.engine_reason
        result.backend = self.backend
        return result


@dataclass(frozen=True)
class EngineResolution:
    """The outcome of engine selection for one spec.

    Attributes:
        engine: the engine that will run.
        reason: for ``"auto"`` resolutions that fell back to the event
            engine, the structured explanation (``None`` otherwise).
        backend: the array backend the kernel engine will replay on
            (``"numpy"`` whenever the requested backend degraded or a
            non-kernel engine runs).
        backend_reason: why a non-numpy backend request degraded to
            numpy (``None`` when the request was honored or absent).
    """

    engine: str
    reason: Optional[str] = None
    backend: str = "numpy"
    backend_reason: Optional[str] = None

    @property
    def combined_reason(self) -> Optional[str]:
        """``reason`` and ``backend_reason`` merged for ``engine_reason``."""
        if self.reason is None:
            return self.backend_reason
        if self.backend_reason is None:
            return self.reason
        return f"{self.reason}; {self.backend_reason}"


def fast_ineligibility(spec: TrialSpec) -> Optional[str]:
    """Why a noisy spec cannot run on the vectorized engines (or ``None``).

    The fast and kernel engines cover every protocol in
    :data:`repro.sim.fast.FAST_VARIANTS` with random halting compiled to
    per-process death schedules; the remaining exclusions are features
    whose semantics are inherently event-driven.  *Every* applicable
    blocker is reported (semicolon-joined), so ``engine_reason`` tells
    the user the complete set of spec changes that would unlock the
    vectorized path.
    """
    reasons = []
    if spec.protocol.factory is not None:
        reasons.append("the protocol uses an opaque machine factory")
    elif spec.protocol.name not in FAST_VARIANTS:
        reasons.append(
            f"protocol {spec.protocol.name!r} has no vectorized replay "
            f"(supported: {sorted(FAST_VARIANTS)})")
    if spec.failures.adversary is not None:
        reasons.append(
            "adaptive crash adversaries observe the execution and "
            "cannot be presampled obliviously")
    if spec.record:
        reasons.append("record=True history capture requires the event "
                       "engine")
    if spec.model.write_noise is not None:
        reasons.append("per-op-kind write noise requires the event engine")
    if not reasons:
        return None
    return "; ".join(reasons)


def _resolve_backend(spec: TrialSpec, engine: str):
    """Resolve the array backend for a spec, given the resolved engine.

    Returns ``(backend, reason)``.  The contract mirrors engine
    resolution: a non-numpy request that cannot be honored — the engine
    is not the kernel, the backend's import is unavailable on this
    host, or the spec uses a feature the backend does not cover —
    *degrades* to numpy with the reason recorded (surfaced on
    ``engine_reason``), unless the caller pinned ``engine="kernel"``
    explicitly, in which case the request was a hard requirement and a
    :class:`~repro.errors.ConfigurationError` names the blocker.
    """
    requested = spec.backend
    if requested == "numpy":
        return "numpy", None
    explicit = spec.engine == "kernel"
    if engine != "kernel":
        return "numpy", (
            f'backend="{requested}" applies to the lockstep kernel; '
            f"the {engine!r} engine runs on numpy")
    unavail = backend_unavailability(requested)
    if unavail is not None:
        if explicit:
            raise ConfigurationError(
                f'backend="{requested}" was requested with '
                f'engine="kernel" but {unavail}')
        return "numpy", (
            f'backend="{requested}" degraded to numpy: {unavail}')
    gap = backend_spec_gap(requested, spec)
    if gap is not None:
        if explicit:
            raise ConfigurationError(
                f'backend="{requested}" was requested with '
                f'engine="kernel" but {gap}')
        return "numpy", (
            f'backend="{requested}" degraded to numpy: {gap}')
    return requested, None


def resolve_engine_info(spec: TrialSpec,
                        trials: Optional[int] = None) -> EngineResolution:
    """Resolve the engine a spec will run on, with the fallback reason.

    ``engine="fast"`` / ``engine="kernel"`` on an ineligible spec raises
    :class:`~repro.errors.ConfigurationError` naming *every* blocker;
    ``engine="auto"`` falls back to the event engine instead and reports
    why in :attr:`EngineResolution.reason` (surfaced as
    ``TrialResult.engine_reason``).  The spec's array backend resolves
    the same way against the resolved engine (see :func:`_resolve_backend`)
    into :attr:`EngineResolution.backend` / ``backend_reason``.

    ``trials`` is the batch context: with ``engine="auto"``, a
    fast-eligible chunk of at least :data:`KERNEL_AUTO_MIN_TRIALS`
    trials resolves to the trial-parallel lockstep kernel — at n up to
    :data:`KERNEL_AUTO_MAX_N` on the legacy sampling lane, and up to
    :data:`KERNEL_AUTO_MAX_N_INVERSE` on the inverse lane.  The batch runner resolves once per
    batch and threads the outcome through its serial and pool paths, so
    the recorded engine never depends on worker chunking.
    """
    base = _resolve_engine_base(spec, trials)
    backend, backend_reason = _resolve_backend(spec, base.engine)
    if backend == "numpy" and backend_reason is None:
        return base
    return EngineResolution(base.engine, base.reason,
                            backend, backend_reason)


def _resolve_engine_base(spec: TrialSpec,
                         trials: Optional[int]) -> EngineResolution:
    """Engine selection alone (:func:`resolve_engine_info` sans backend)."""
    if isinstance(spec.model, StepModelSpec):
        return EngineResolution("step")
    if isinstance(spec.model, HybridModelSpec):
        return EngineResolution("hybrid")
    if spec.engine == "event":
        return EngineResolution("event")
    why_not = fast_ineligibility(spec)
    if spec.engine in ("fast", "kernel"):
        if why_not is not None:
            raise ConfigurationError(
                f'engine="{spec.engine}" was requested but {why_not}')
        if spec.engine == "kernel" and spec.n > _PACK_MAX_N:
            lane = _inverse_lane(spec)
            if lane is not None and lane.sampler.tie_exact:
                # Past the packed-pid range the kernel's multiply-sum pid
                # extraction blends exactly-tied columns, and tie-exact
                # lanes tie *by construction* — refuse rather than
                # silently diverge from the scalar replay.
                raise ConfigurationError(
                    f'engine="kernel" was requested but n={spec.n} '
                    f"exceeds the packed-pid range (n <= {_PACK_MAX_N}) "
                    f"required for the exact-tie "
                    f"{lane.sampler.name!r} schedule lane")
        return EngineResolution(spec.engine)
    # engine == "auto"
    if why_not is not None:
        return EngineResolution("event", reason=why_not)
    if trials is not None and trials >= KERNEL_AUTO_MIN_TRIALS:
        # Large trial batches: the lockstep kernel beats both the event
        # engine (whose per-op heap traffic the small-n rule below is
        # protecting against) and the scalar fast replay.  Inverse-lane
        # specs stay ahead through n=1024 (tournament min + O(k) horizon
        # extension); legacy-lane specs pay an O(n·horizon) presample
        # either way and cross over much earlier.
        cap = KERNEL_AUTO_MAX_N
        if (KERNEL_AUTO_MAX_N < spec.n <= KERNEL_AUTO_MAX_N_INVERSE
                and _inverse_lane(spec) is not None):
            cap = KERNEL_AUTO_MAX_N_INVERSE
        if spec.n <= cap:
            return EngineResolution("kernel")
    if spec.n < FAST_AUTO_MIN_N:
        return EngineResolution(
            "event",
            reason=(f"auto keeps n={spec.n} < {FAST_AUTO_MIN_N} on the "
                    'event engine (fast-engine fixed costs dominate at '
                    'small n); pass engine="fast" to override'))
    return EngineResolution("fast")


def resolve_engine(spec: TrialSpec) -> str:
    """The engine a spec will run on, with ``"auto"`` resolved."""
    return resolve_engine_info(spec).engine


def compile_death_ops(failures: FailureSpec, n: int,
                      rng: np.random.Generator) -> Optional[np.ndarray]:
    """Compile a :class:`FailureSpec` into a per-process death schedule.

    Returns the 1-based operation index before which each process halts
    (the ``H_ij`` of Section 3.1.2), drawn with the same RNG discipline as
    the event engine's failure stream, or ``None`` when the spec injects
    no random halting.  Adaptive adversaries cannot be presampled and are
    rejected by :func:`fast_ineligibility` before this point.
    """
    if failures.h <= 0.0:
        return None
    return RandomHalting(failures.h, rng).presample_death_ops(n)


def compile_spec(spec: TrialSpec, seed: SeedLike = None) -> CompiledTrial:
    """Assemble machines + shared memory + scheduler + engine from a spec."""
    if isinstance(spec.model, NoisyModelSpec):
        return _compile_noisy(spec, seed)
    if isinstance(spec.model, StepModelSpec):
        return _compile_step(spec, seed)
    return _compile_hybrid(spec, seed)


def run_trial(spec: TrialSpec, seed: SeedLike = None) -> TrialResult:
    """Compile and execute one trial; everything derives from ``seed``."""
    return compile_spec(spec, seed).run()


def run_trials(spec: TrialSpec, seeds: Sequence[SeedLike],
               engine: Optional[str] = None) -> List[TrialResult]:
    """Run one spec over several per-trial seeds (a batch chunk).

    ``engine`` is the pre-resolved engine name threaded down by the
    batch runner (``None`` resolves here with ``trials=len(seeds)``).
    Fast-family chunks run through the columnar frame pipeline — the
    single replay implementation — and reconstruct the result list at
    the edge, bit-identical to ``[run_trial(spec, s) for s in seeds]``
    *on the same engine*.  Note the one way the engines can differ for
    ``engine="auto"`` specs: a chunk of at least
    :data:`KERNEL_AUTO_MIN_TRIALS` trials at small n resolves to the
    kernel where single trials resolve to the event engine — auto picks
    the best engine for the batch, and different engines draw different
    streams (force ``engine=`` on the spec to pin one).
    """
    if isinstance(spec.model, NoisyModelSpec) and not spec.record:
        resolved = engine if engine is not None else \
            resolve_engine_info(spec, trials=len(seeds)).engine
        if resolved in ("fast", "kernel"):
            return run_trials_frame(spec, seeds,
                                    engine=resolved).to_trial_results()
    return [run_trial(spec, s) for s in seeds]


def run_trials_frame(spec: TrialSpec, seeds: Sequence[SeedLike],
                     engine: Optional[str] = None) -> ResultFrame:
    """Run one spec over several per-trial seeds, returning a frame.

    The columnar twin of :func:`run_trials`:
    ``run_trials_frame(spec, seeds).to_trial_results()`` is bit-identical
    to ``run_trials(spec, seeds)`` for every spec.  Fast chunks take the
    trial-batched columnar pipeline (:func:`_run_fast_chunk_frame`),
    kernel chunks the trial-parallel lockstep pipeline
    (:func:`_run_kernel_chunk_frame`); both materialize zero per-trial
    ``TrialResult`` objects.  Every other engine runs trial-by-trial and
    converts with :meth:`~repro.sim.frame.ResultFrame.from_results`.

    One side-effect difference from the per-trial loop: the fast lanes
    treat *fresh* ``SeedSequence`` seeds as pure values — their spawn
    counters are not advanced (the child streams are derived directly).
    Each call is still bit-identical to the list path, but reusing the
    same seed-sequence objects across calls repeats trials where the
    list path would spawn fresh children; thread a root seed through the
    batch runner (which derives a new block per call) instead of reusing
    trial sequences.
    """
    if spec.record:
        raise ConfigurationError(
            "record=True histories cannot be stored in a columnar frame "
            "(result.memory would be silently dropped); use the list path")
    if isinstance(spec.model, NoisyModelSpec):
        resolved = engine if engine is not None else \
            resolve_engine_info(spec, trials=len(seeds)).engine
        if resolved == "kernel":
            return _run_kernel_chunk_frame(spec, seeds)
        if resolved == "fast":
            return _run_fast_chunk_frame(spec, seeds)
    return ResultFrame.from_results([run_trial(spec, s) for s in seeds],
                                    spec=spec)


# ---------------------------------------------------------------------------
# Noisy model
# ---------------------------------------------------------------------------


def _noisy_streams(seed: SeedLike):
    """The per-trial stream spawn discipline of the noisy compiler.

    Returns ``(rng_noise, rng_dither, rng_fail, rng_proto)``.  Shared by
    the single-trial and chunked fast paths so their bit-identity cannot
    be broken by one site reordering the spawn (the differential oracle
    mirrors the same order from clonable seed sequences).
    """
    return spawn(make_rng(seed), 4)


@dataclass(frozen=True)
class _InverseLane:
    """The resolved inverse-lane parameters of one spec."""

    sampler: object
    delta_kind: str
    base: float
    epsilon: float


def _inverse_lane(spec: TrialSpec) -> Optional[_InverseLane]:
    """The spec's inverse-lane parameters, or ``None`` (legacy lane)."""
    model = spec.model
    if model.delta.kind not in ("zero", "dithered"):
        return None
    sampler = inverse_sampler_for(model.noise.build())
    if sampler is None:
        return None
    epsilon = model.delta.param("epsilon", 1e-8)
    if model.delta.kind == "dithered" and epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    return _InverseLane(sampler, model.delta.kind,
                        model.delta.param("base", 0.0), epsilon)


def _compile_noisy(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    rng_noise, rng_dither, rng_fail, rng_proto = _noisy_streams(seed)
    input_map = spec.input_map()

    noise = model.noise.build()
    if model.write_noise is not None:
        noise = PerOpKindNoise(noise, model.write_noise.build())

    resolution = resolve_engine_info(spec)

    if resolution.engine in ("fast", "kernel"):
        lane = _inverse_lane(spec)
        inputs = [input_map[pid] for pid in range(spec.n)]
        if lane is not None:
            # Revalidate with the exact legacy semantics (admissibility
            # or the negative-delay check under allow_degenerate).
            NoisyScheduler(noise, None,
                           allow_degenerate=model.allow_degenerate)

            def execute() -> TrialResult:
                return _run_fast_inverse(
                    spec, lane, rng_noise, rng_fail,
                    _fast_tie_seqs(spec, rng_proto), inputs)
        else:
            delta = model.delta.build(spec.n, rng_dither)

            def execute() -> TrialResult:
                return _fast_attempts(spec, noise, delta, rng_noise,
                                      rng_fail,
                                      _fast_tie_seqs(spec, rng_proto),
                                      inputs,
                                      horizon=lean_horizon_ops(spec.n))

        return CompiledTrial(spec=spec, engine=resolution.engine,
                             engine_reason=resolution.combined_reason,
                             backend=resolution.backend,
                             _execute=execute)

    delta = model.delta.build(spec.n, rng_dither)
    scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                               allow_degenerate=model.allow_degenerate)
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    adversary = (spec.failures.adversary.build()
                 if spec.failures.adversary is not None else None)
    eng = NoisyEngine(machines, memory, scheduler,
                      failures=failures,
                      crash_adversary=adversary,
                      max_total_ops=spec.max_total_ops,
                      stop_after_first_decision=spec.stop_after_first_decision)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="event", machines=machines,
                         memory=memory,
                         engine_reason=resolution.combined_reason,
                         backend=resolution.backend,
                         _execute=execute)


def _fast_tie_seqs(spec: TrialSpec, rng_proto) -> Optional[list]:
    """Per-process coin seed sequences for the random-tie replay.

    Spawned from the protocol stream exactly like
    :func:`repro.sim.build.make_machines` does for ``"random-tie"``, so
    fast and event runs given the same protocol stream flip identically.
    Sequences (not generators) are kept because every replay attempt must
    restart the coin streams from the top — building a generator from a
    ``SeedSequence`` is pure, so the same sequence can seed any number of
    identical streams.
    """
    if not FAST_VARIANTS[spec.protocol.name].random_tie:
        return None
    seed_seq = rng_proto.bit_generator.seed_seq  # type: ignore[attr-defined]
    return seed_seq.spawn(spec.n)


def _tie_rngs(tie_seqs) -> Optional[list]:
    if tie_seqs is None:
        return None
    return [make_rng(seq) for seq in tie_seqs]


def _fast_prefix_ops(n: int) -> int:
    """Initial argsort prefix (in ops per process) for one replay.

    The full :func:`lean_horizon_ops` horizon is sized so a redraw is
    almost never needed, but the race empirically ends well before
    2·log2(n) rounds — argsorting the whole horizon wastes most of the
    sort (the dominant fast-engine cost at large n).  Replaying a column
    prefix is exact whenever the replay *completes* with no still-running
    process having consumed its entire prefix: every unseen event then
    provably lies after the stopping point, so the executed sequence
    matches the full argsort's.  The replay refuses the remaining case
    (``truncated=True`` returns ``None`` for a first-decision stop with a
    starved process — its dropped events could precede the stop), and
    callers double the prefix on ``None``, falling back to redrawing
    noise only once the full horizon itself overflows.
    """
    return 4 * (int(np.log2(n + 2)) + 10)


def _kernel_horizon_ops(n: int) -> int:
    """The lockstep kernel's initial sampled horizon (ops per process).

    Deliberately tighter than :func:`lean_horizon_ops`: the kernel's
    per-trial fallback regrows an *exact* schedule extension, so an
    occasional overflow costs one scalar replay instead of correctness,
    and the smaller tensor is what the per-trial draw cost scales with.
    """
    return 4 * (int(np.log2(n + 2)) + 7)


def replay_schedule(spec: TrialSpec, times, inputs, death_ops, tie_seqs,
                    prefix: Optional[int] = None, sink=None):
    """Replay one presampled schedule, growing the argsort prefix.

    This is the production fast path over a fixed legacy-lane schedule
    matrix: replay a column prefix, and on ``None`` (horizon overflow
    *or* a starved process at a first-decision stop — see
    :func:`repro.sim.fast.replay`) double the prefix up to the full
    matrix.  The differential oracle drives this exact function, so
    prefix handling is covered by the cross-engine sweep.  Returns
    ``None`` only when the full matrix itself overflows (the caller then
    redraws noise at a doubled horizon).  With a ``sink`` the outcome is
    appended columnar and ``True`` returned instead of a result.
    """
    max_ops = times.shape[1]
    k = min(prefix if prefix is not None else _fast_prefix_ops(spec.n),
            max_ops)
    while True:
        result = replay(times[:, :k] if k < max_ops else times, inputs,
                        variant=spec.protocol.name, death_ops=death_ops,
                        stop_after_first_decision=
                        spec.stop_after_first_decision,
                        tie_rngs=_tie_rngs(tie_seqs),
                        round_cap=spec.protocol.round_cap,
                        max_total_ops=spec.max_total_ops,
                        truncated=k < max_ops, sink=sink)
        if result is not None or k >= max_ops:
            return result
        k = min(k * 2, max_ops)


def replay_schedule_open(spec: TrialSpec, times, inputs, death_ops,
                         tie_seqs, prefix: Optional[int] = None, sink=None):
    """Replay an *extensible* (inverse-lane) schedule matrix.

    Unlike :func:`replay_schedule`, the matrix here is itself a prefix
    of the trial's infinite schedule, so even the full-width replay runs
    with ``truncated=True``: a completion with a starved process is
    refused and ``None`` means "extend the matrix" (the caller draws
    more columns from the same stream), never "accept a possibly inexact
    result".  This is what keeps the scalar, frame, and kernel inverse
    lanes exactly equal to the infinite-horizon replay.
    """
    max_ops = times.shape[1]
    k = min(prefix if prefix is not None else _fast_prefix_ops(spec.n),
            max_ops)
    while True:
        result = replay(times[:, :k] if k < max_ops else times, inputs,
                        variant=spec.protocol.name, death_ops=death_ops,
                        stop_after_first_decision=
                        spec.stop_after_first_decision,
                        tie_rngs=_tie_rngs(tie_seqs),
                        round_cap=spec.protocol.round_cap,
                        max_total_ops=spec.max_total_ops,
                        truncated=True, sink=sink)
        if result is not None or k >= max_ops:
            return result
        k = min(k * 2, max_ops)


def _overflow_error(last_ops: int) -> ConfigurationError:
    return ConfigurationError(
        f"schedule horizon kept overflowing (last tried {last_ops} ops); "
        "is the noise distribution effectively degenerate?")


def _run_fast_inverse(spec: TrialSpec, lane: _InverseLane, rng_noise,
                      rng_fail, tie_seqs, inputs, horizon: Optional[int] =
                      None, sink=None):
    """The scalar inverse-lane run: draw, replay, extend until exact.

    The single replay implementation behind ``run_trial`` on the
    fast/kernel engines for inverse-lane specs, and the per-trial
    fallback of both chunked pipelines (which rebuild the same streams
    and therefore redraw the same leading columns).
    """
    n = spec.n
    starts = draw_starts(rng_noise, n, lane.delta_kind, lane.base,
                         lane.epsilon)
    k = horizon if horizon is not None else lean_horizon_ops(n)
    times = draw_times(rng_noise, lane.sampler, starts, k)
    death_ops = compile_death_ops(spec.failures, n, rng_fail)
    cap = k << _INVERSE_GROWTH_CAP
    prefix = None
    while True:
        result = replay_schedule_open(spec, times, inputs, death_ops,
                                      tie_seqs, prefix=prefix, sink=sink)
        if result is not None:
            if sink is not None:
                return result
            return check_result(result, spec.check)
        if times.shape[1] >= cap:
            raise _overflow_error(times.shape[1])
        times = extend_times(rng_noise, lane.sampler, times,
                             times.shape[1])
        prefix = times.shape[1]


def _fast_attempts(spec: TrialSpec, noise, delta, rng_noise, rng_fail,
                   tie_seqs, inputs, horizon: int,
                   attempts: int = 10) -> TrialResult:
    """The legacy-lane presample-replay-retry loop (scalar + fallbacks).

    Each attempt redraws the schedule (and death schedule) from the
    *continuing* per-trial streams at a doubled horizon, so a batched
    first attempt followed by this loop is bit-identical to running the
    loop from the start.
    """
    model = spec.model
    for _attempt in range(attempts):
        scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                                   allow_degenerate=model.allow_degenerate)
        times = scheduler.presample(spec.n, horizon)
        death_ops = compile_death_ops(spec.failures, spec.n, rng_fail)
        result = replay_schedule(spec, times, inputs, death_ops, tie_seqs)
        if result is not None:
            return check_result(result, spec.check)
        horizon *= 2
    raise _overflow_error(horizon)


_SeedSequence = np.random.SeedSequence


def _trial_children(seed: SeedLike, k: int) -> list:
    """The first ``k`` child seed sequences of one trial's stream.

    Matches the children :func:`_noisy_streams` derives (a child's value
    depends only on its index, never on how many siblings are spawned),
    without constructing a root generator or the generators of streams
    the trial will never draw from — the noisy compiler's stream order is
    (noise, dither, fail, proto), and e.g. a no-failure lean trial only
    ever consumes the first two.  Fresh sequences take the direct-child
    construction path (``spawn_key + (i,)``, exactly what
    ``SeedSequence.spawn`` produces) to skip ``spawn()``'s per-call
    overhead; already-spawned-from sequences and live generators keep the
    mutating ``spawn`` — always of all four children, so their spawn
    counters advance exactly as the legacy ``_noisy_streams`` call would.
    """
    if isinstance(seed, _SeedSequence):
        if seed.n_children_spawned:
            return seed.spawn(4)
        entropy, key, pool = seed.entropy, seed.spawn_key, seed.pool_size
        return [_SeedSequence(entropy, spawn_key=key + (i,), pool_size=pool)
                for i in range(k)]
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq.spawn(4)  # type: ignore[attr-defined]
    return [_SeedSequence(seed, spawn_key=(i,)) for i in range(k)]


class _FixedStarts(DeltaSchedule):
    """A delay schedule with precomputed start times and zero delays.

    Stands in for a ``DitheredStart``/``ZeroDelta`` whose random draws
    already happened (the columnar pipeline draws the starts inline), so
    the rare horizon-overflow fallback can rebuild the exact legacy
    scheduler without re-consuming the dither stream.
    """

    bound = 0.0

    def __init__(self, starts: np.ndarray) -> None:
        self._starts = starts

    def start(self, pid: int) -> float:
        return float(self._starts[pid])

    def delay(self, pid: int, op_index: int) -> float:
        return 0.0

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.zeros(n_ops)


def _check_frame(frame: ResultFrame, spec: TrialSpec) -> None:
    """Columnar agreement + validity check (the frame twin of
    :func:`repro.sim.build.check_result`).

    Vectorized over the whole frame; only a *failing* trial rebuilds its
    decisions dict so the error raised is byte-identical to the per-trial
    invariant checkers'.
    """
    if not spec.check or len(frame) == 0:
        return

    def rebuild(i: int):
        return {pid: Decision(value, rnd, ops)
                for pid, value, rnd, ops in frame.column("decisions")[i]}

    disagreed = np.nonzero(frame.column("n_distinct_decisions") > 1)[0]
    if disagreed.size:
        check_agreement(rebuild(int(disagreed[0])))
    input_values = set(spec.input_map().values())
    if len(input_values) == 1:
        (common,) = input_values
        values = frame.column("decided_value")
        bad = np.nonzero(np.isfinite(values) & (values != common))[0]
        if bad.size:
            i = int(bad[0])
            check_validity(dict(frame.column("inputs")[i]), rebuild(i))


def _run_fast_chunk_frame(spec: TrialSpec,
                          seeds: Sequence[SeedLike]) -> ResultFrame:
    """Trial-batched fast execution writing columns directly.

    The per-trial seed and stream discipline of the scalar path (so
    results are bit-identical to it), with the per-trial object pipeline
    stripped:

    * only the *consumed* RNG streams are instantiated, batch-seeded per
      block when the seeds match the batch runner's pattern
      (``_seedhash``, bit-exact);
    * inverse-lane specs draw their column-major uniform block and
      transform it inline; other zero/dithered specs keep the inline
      vectorized legacy presample; everything else builds the legacy
      scheduler objects per trial;
    * the replay appends straight into a :class:`FrameBuilder` sink, so
      no ``TrialResult``, inputs dict, decisions dict, or halted set is
      ever materialized;
    * agreement/validity run vectorized over the finished frame.
    """
    model = spec.model
    n = spec.n
    input_map = spec.input_map()
    inputs = [input_map[pid] for pid in range(n)]
    input_pairs = tuple((pid, int(bit)) for pid, bit in enumerate(inputs))
    noise = model.noise.build()
    # Constructing the scheduler once revalidates the distribution with
    # the exact legacy semantics (admissibility or the negative-delay
    # check under allow_degenerate).
    NoisyScheduler(noise, None, allow_degenerate=model.allow_degenerate)
    cfg = FAST_VARIANTS[spec.protocol.name]
    lane = _inverse_lane(spec)
    delta_kind = model.delta.kind
    vector_delta = delta_kind in ("zero", "dithered")
    epsilon = model.delta.param("epsilon", 1e-8)
    base_start = model.delta.param("base", 0.0)
    if delta_kind == "dithered" and epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    h = spec.failures.h
    if lane is not None:
        need = 4 if cfg.random_tie else (3 if h > 0.0 else 1)
    else:
        need = 4 if cfg.random_tie else (3 if h > 0.0 else 2)
    horizon = lean_horizon_ops(n)
    prefix = min(_fast_prefix_ops(n), horizon)
    sub = max(1, _FAST_CHUNK_ELEMENTS // max(n * horizon, 1))
    backend, backend_reason = _resolve_backend(spec, "fast")
    builder = FrameBuilder(spec=spec, n=n, inputs=input_pairs,
                           engine="fast", engine_reason=backend_reason,
                           backend=backend)
    # Local bindings for the per-trial loop (it runs 10,000+ times per
    # Figure-1 grid cell; attribute lookups are measurable there).
    generator, pcg64 = np.random.Generator, np.random.PCG64
    sample_array = noise.sample_array
    dithered = delta_kind == "dithered"
    stop_first = spec.stop_after_first_decision
    truncated = prefix < horizon
    shape = (n, horizon)
    # Direct variant dispatch (the per-trial replay() lookup is pure
    # overhead when the whole chunk runs one protocol).
    if cfg.optimized:
        replay_fn = _replay_optimized
    else:
        replay_fn = functools.partial(replay_lean, lag=cfg.lag)
    if spec.protocol.round_cap is not None or spec.max_total_ops is not None:
        replay_fn = functools.partial(replay_fn,
                                      round_cap=spec.protocol.round_cap,
                                      max_total_ops=spec.max_total_ops)
    reusable = ReusablePCG64()
    for start in range(0, len(seeds), sub):
        block = seeds[start:start + sub]
        # Batch the whole block's stream seeding into one vectorized
        # SeedSequence-hash pass when the block matches the batch
        # runner's seed pattern; the per-trial streams then come from a
        # single reused generator via state injection (bit-identical —
        # pinned by tests/test_seedhash.py).
        states = None
        if vector_delta:
            recognized = block_spawn_keys(block)
            if recognized is not None:
                entropy, key_matrix = recognized
                children = (0,)
                if lane is None and dithered:
                    children += (1,)
                if h > 0.0:
                    children += (2,)
                states = {
                    child: pcg64_states(entropy, key_matrix, child)
                    for child in children
                }
        contexts = []
        times_list = []
        for k, seed in enumerate(block):
            if states is None:
                kids = _trial_children(seed, need)
                rng_noise = generator(pcg64(kids[0]))
                rng_dither = (generator(pcg64(kids[1]))
                              if (lane is None
                                  and (dithered or not vector_delta))
                              else None)
                rng_fail = (generator(pcg64(kids[2]))
                            if h > 0.0 else None)
                tie_key = kids[3] if cfg.random_tie else None
            else:
                rng_noise = rng_dither = rng_fail = None
                tie_key = (_SeedSequence(seed.entropy,
                                         spawn_key=seed.spawn_key + (3,))
                           if cfg.random_tie else None)
            if lane is not None:
                # Inverse lane: one stream, column-major draws.
                if rng_noise is None:
                    rng_noise = reusable.reset(states[0][k])
                starts = draw_starts(rng_noise, n, lane.delta_kind,
                                     lane.base, lane.epsilon)
                times = draw_times(rng_noise, lane.sampler, starts,
                                   horizon)
                delta = None
            elif vector_delta:
                if dithered:
                    if rng_dither is None:
                        rng_dither = reusable.reset(states[1][k])
                    starts = base_start + rng_dither.uniform(
                        0.0, epsilon, size=n)
                else:
                    starts = np.zeros(n)
                delta = None  # _FixedStarts(starts) built only on fallback
                if rng_noise is None:
                    rng_noise = reusable.reset(states[0][k])
                # Inline presample: bit-identical to
                # NoisyScheduler.presample with a zero-delay schedule.
                incs = sample_array(rng_noise, shape)
                incs += rng_noise.uniform(0.0, 1e-12, size=shape)
                times = incs.cumsum(axis=1)
                times += starts[:, None]
            else:
                starts = None
                delta = model.delta.build(n, rng_dither)
                scheduler = NoisyScheduler(
                    noise, rng_noise, delta=delta,
                    allow_degenerate=model.allow_degenerate)
                times = scheduler.presample(n, horizon)
            if h > 0.0:
                if rng_fail is None:
                    rng_fail = reusable.reset(states[2][k])
                death_ops = compile_death_ops(spec.failures, n, rng_fail)
            else:
                death_ops = None
            tie_seqs = tie_key.spawn(n) if tie_key is not None else None
            times_list.append(times)
            # The overflow-fallback context: in the batched-seeding lane
            # the seeds are fresh SeedSequences and the legacy
            # single-trial lane rederives identical streams from `seed`;
            # in the object lane the live generators themselves are kept
            # so the retry continues their streams exactly like the
            # legacy chunk did (a re-derivation would diverge for
            # generator or already-spawned-from seeds) — except in the
            # inverse lane, whose fallback *restarts* the streams, so
            # the pure child sequences are kept instead.
            if states is None:
                if lane is not None:
                    fallback = (kids[0], kids[2] if h > 0.0 else None)
                else:
                    fallback = (rng_noise, rng_fail,
                                delta if delta is not None
                                else _FixedStarts(starts))
            else:
                fallback = seed
            contexts.append((death_ops, tie_seqs, fallback))
        orders = np.argsort(
            np.stack([t[:, :prefix] for t in times_list]).reshape(
                len(block), -1),
            axis=1, kind="stable")
        # One vectorized event->pid map for the whole block; replay takes
        # the ready per-trial list instead of re-deriving it.
        pid_rows = orders // prefix
        for k, (death_ops, tie_seqs, fallback) in enumerate(contexts):
            appended = replay_fn(times_list[k][:, :prefix], inputs,
                                 death_ops=death_ops,
                                 stop_after_first_decision=stop_first,
                                 tie_rngs=_tie_rngs(tie_seqs),
                                 order=pid_rows[k].tolist(),
                                 truncated=truncated or lane is not None,
                                 sink=builder)
            if appended is None:
                schedule_replay = (replay_schedule_open if lane is not None
                                   else replay_schedule)
                appended = schedule_replay(spec, times_list[k], inputs,
                                           death_ops, tie_seqs,
                                           prefix=prefix * 2, sink=builder)
            if appended is None:
                # Rare full-horizon overflow; the one materialized
                # result is the exception path.
                result = _fast_overflow_fallback(
                    spec, lane, noise, fallback, tie_seqs, inputs, horizon)
                builder.append_result(result)
    frame = builder.build()
    _check_frame(frame, spec)
    return frame


def _fast_overflow_fallback(spec, lane, noise, fallback, tie_seqs, inputs,
                            horizon) -> TrialResult:
    """Finish one trial whose drawn horizon overflowed (all lanes)."""
    if not isinstance(fallback, tuple):
        # Batched-seeding lane: rerun down the legacy single-trial lane —
        # it rederives the same streams, redraws the same leading
        # schedule, and continues exactly as the scalar path would.
        result = run_trial(spec, fallback)
        return result
    if lane is not None:
        noise_seq, fail_seq = fallback
        result = _run_fast_inverse(
            spec, lane, make_rng(noise_seq),
            make_rng(fail_seq) if fail_seq is not None else None,
            tie_seqs, inputs, horizon=horizon * 2)
    else:
        rng_noise, rng_fail, delta = fallback
        result = _fast_attempts(spec, noise, delta, rng_noise, rng_fail,
                                tie_seqs, inputs, horizon=horizon * 2,
                                attempts=9)
    result.engine = "fast"
    result.engine_reason = None
    return result


# ---------------------------------------------------------------------------
# The trial-parallel lockstep kernel chunk
# ---------------------------------------------------------------------------


class _RowSink:
    """A one-row sink capturing a scalar replay's ``append_fast`` payload.

    The kernel's per-trial fallback replays through the scalar path but
    must write the *sink-shaped* outcome (chronological halted/decision
    tuples) into its block columns, not a ``TrialResult``.
    """

    __slots__ = ("row",)

    def __init__(self) -> None:
        self.row = None

    def append_fast(self, decisions, halted, total_ops, max_round,
                    preference_changes, budget_exhausted=False) -> None:
        self.row = (decisions, halted, total_ops, max_round,
                    preference_changes, budget_exhausted)


def _kernel_tie_flips(tie_seqs_list, n: int, trials: int,
                      flips: int) -> np.ndarray:
    """Pre-sampled coin flips, ``(n, trials, flips)``.

    Each (process, trial) stream is the exact generator
    :func:`_fast_tie_seqs` would build, drawn ``flips`` bits ahead —
    bit-identical to on-demand scalar draws because numpy's bounded
    ``integers`` fills arrays from the same bit stream as repeated
    scalar calls.  ``tie_seqs_list`` holds each trial's already-spawned
    per-process sequences (spawning mutates the parent's counter, so the
    overflow fallback must reuse these exact children).
    """
    out = np.empty((n, trials, flips), np.int8)
    for t, seqs in enumerate(tie_seqs_list):
        for pid, seq in enumerate(seqs):
            out[pid, t] = make_rng(seq).integers(0, 2, size=flips)
    return out


def _accumulate_rows(incs: np.ndarray, tie_exact: bool = False) -> np.ndarray:
    """In-place ``cumsum(incs, axis=1)`` over an ``(m, k, n)`` tensor.

    Bit-identical to ``np.cumsum`` (the same left-to-right binary-add
    chain; IEEE-754 addition is commutative bitwise), but accumulating
    slab-by-slab into the existing buffer instead of materializing a
    second chunk-sized tensor — measured ~30x faster at the wide-n
    chunk shape, where ``np.cumsum``'s fresh half-GB output (page
    faults) and strided middle-axis reduce dominate the draw phase.

    ``tie_exact`` quantizes every partial sum (including the seeded
    first slab), matching the scalar chain of
    :func:`repro.sim.sampler.draw_times` bit for bit.
    """
    if tie_exact:
        quantize_times(incs[:, 0, :])
    for j in range(1, incs.shape[1]):
        np.add(incs[:, j - 1, :], incs[:, j, :], out=incs[:, j, :])
        if tie_exact:
            quantize_times(incs[:, j, :])
    return incs


def _run_kernel_chunk_frame(spec: TrialSpec,
                            seeds: Sequence[SeedLike]) -> ResultFrame:
    """Trial-parallel lockstep execution writing columns in blocks.

    Same per-trial seed/stream/lane discipline as the fast paths (so the
    outcome is bit-identical to them for every spec and worker count),
    but the replay itself steps every trial of a block simultaneously
    through :func:`repro.sim.kernel.replay_chunk`.  Trials whose sampled
    horizon overflows fall back one-by-one to the scalar replay on an
    exactly-extended schedule.
    """
    model = spec.model
    n = spec.n
    input_map = spec.input_map()
    inputs = [input_map[pid] for pid in range(n)]
    input_pairs = tuple((pid, int(bit)) for pid, bit in enumerate(inputs))
    noise = model.noise.build()
    NoisyScheduler(noise, None, allow_degenerate=model.allow_degenerate)
    cfg = FAST_VARIANTS[spec.protocol.name]
    lane = _inverse_lane(spec)
    h = spec.failures.h
    stop_first = spec.stop_after_first_decision
    horizon = lean_horizon_ops(n)
    k = min(_kernel_horizon_ops(n), horizon) if lane is not None else horizon
    solo = n == 1 and h <= 0.0
    sub = max(1, min(_KERNEL_CHUNK_ELEMENTS // max(n * k, 1),
                     _KERNEL_LANE_ELEMENTS // max(n, 1)))
    backend, backend_reason = _resolve_backend(spec, "kernel")
    builder = FrameBuilder(spec=spec, n=n, inputs=input_pairs,
                           engine="kernel", engine_reason=backend_reason,
                           backend=backend)
    generator, pcg64 = np.random.Generator, np.random.PCG64
    need = (4 if cfg.random_tie
            else (3 if h > 0.0 else (1 if lane is not None else 2)))
    reusable = ReusablePCG64()
    reusable_fail = ReusablePCG64()
    for start in range(0, len(seeds), sub):
        block = seeds[start:start + sub]
        m = len(block)
        states = None
        if lane is not None:
            recognized = block_spawn_keys(block)
            if recognized is not None:
                entropy, key_matrix = recognized
                children = (0,) + ((2,) if h > 0.0 else ())
                states = {child: pcg64_states(entropy, key_matrix, child)
                          for child in children}
        contexts: list = []
        tie_seqs_list: list = []
        deaths = None
        if solo and states is not None and not cfg.random_tie:
            # n == 1 without crashes: the outcome is schedule-independent
            # (see the kernel's broadcast path), so the noise draws can
            # be skipped wholesale — the streams are pure values that no
            # other consumer continues.
            times = np.broadcast_to(
                np.arange(1.0, k + 1.0), (1, m, k))
            contexts = block
            trials_major = False
        elif (states is not None and lane is not None
              and not cfg.random_tie and h <= 0.0):
            # The batch-seeded inverse hot lane: per trial, one state
            # reset and one uniform draw — the dithered starts ride as
            # row 0 of the same (k+1, n) block, consuming the stream
            # exactly like draw_starts followed by draw_times.
            contexts = block
            dithered = lane.delta_kind == "dithered"
            buf = np.empty((m, k, n))
            state0 = states[0]
            reset = reusable.reset
            if dithered:
                # Two draws per trial — the start dithers, then the
                # increment block — consuming the stream exactly like
                # draw_starts followed by draw_times (Generator.random
                # consumes one uint64 per double with no cross-call
                # buffering, so the split equals one (k+1, n) draw).
                # Keeping the starts out of ``buf`` keeps the increment
                # tensor contiguous for the in-place accumulation below.
                starts_all = np.empty((m, n))
                for t in range(m):
                    rng = reset(state0[t])
                    rng.random(out=starts_all[t])
                    rng.random(out=buf[t])
                starts_all *= lane.epsilon
                if lane.base:
                    starts_all += lane.base
            else:
                starts_all = None
                for t in range(m):
                    reset(state0[t]).random(out=buf[t])
            lane.sampler.transform_inplace(buf)
            if starts_all is not None:
                # Seed the sequential chain exactly like draw_times.
                buf[:, 0, :] += starts_all
            times = _accumulate_rows(buf, lane.sampler.tie_exact)
            trials_major = True
        else:
            if lane is not None:
                buf = np.empty((m, k, n))
                starts_all = (np.empty((m, n))
                              if lane.delta_kind == "dithered" else None)
            else:
                buf = np.empty((m, n, horizon))
            if h > 0.0:
                deaths = np.empty((m, n), np.int64)
            for t, seed in enumerate(block):
                if states is None:
                    kids = _trial_children(seed, need)
                    rng_noise = generator(pcg64(kids[0]))
                    rng_fail = (generator(pcg64(kids[2]))
                                if h > 0.0 else None)
                    tie_key = kids[3] if cfg.random_tie else None
                    rng_dither = (generator(pcg64(kids[1]))
                                  if lane is None else None)
                    if lane is not None:
                        contexts.append((kids[0],
                                         kids[2] if h > 0.0 else None))
                else:
                    rng_noise = reusable.reset(states[0][t])
                    rng_fail = (reusable_fail.reset(states[2][t])
                                if h > 0.0 else None)
                    rng_dither = None
                    tie_key = (_SeedSequence(
                        seed.entropy, spawn_key=seed.spawn_key + (3,))
                        if cfg.random_tie else None)
                    contexts.append(seed)
                if lane is not None:
                    if starts_all is not None:
                        starts_all[t] = draw_starts(
                            rng_noise, n, lane.delta_kind, lane.base,
                            lane.epsilon)
                    rng_noise.random((k, n), out=buf[t])
                else:
                    delta = model.delta.build(n, rng_dither)
                    scheduler = NoisyScheduler(
                        noise, rng_noise, delta=delta,
                        allow_degenerate=model.allow_degenerate)
                    buf[t] = scheduler.presample(n, horizon)
                    contexts.append((rng_noise, rng_fail, delta))
                if h > 0.0:
                    deaths[t] = compile_death_ops(spec.failures, n,
                                                  rng_fail)
                if cfg.random_tie:
                    tie_seqs_list.append(tie_key.spawn(n))
            if lane is not None:
                lane.sampler.transform_inplace(buf)
                if starts_all is not None:
                    buf[:, 0, :] += starts_all
                times = _accumulate_rows(buf, lane.sampler.tie_exact)
                trials_major = True
            else:
                times = np.ascontiguousarray(np.moveaxis(buf, 1, 0))
                trials_major = False
        death_t = (np.ascontiguousarray(deaths.T)
                   if deaths is not None else None)
        horizon_k = times.shape[1] if trials_major else times.shape[2]
        flips = None
        if cfg.random_tie:
            flips = _kernel_tie_flips(tie_seqs_list, n, m,
                                      lean_flip_bound(horizon_k))
        out = replay_chunk(times, inputs, variant=spec.protocol.name,
                           death_ops=death_t, tie_flips=flips,
                           stop_after_first_decision=stop_first,
                           horizon_is_final=lane is None,
                           trials_major=trials_major,
                           round_cap=spec.protocol.round_cap,
                           max_total_ops=spec.max_total_ops,
                           backend=backend)
        decisions, halted = out.decisions, out.halted
        if out.overflow.any():
            for t in np.nonzero(out.overflow)[0].tolist():
                _kernel_overflow_fallback(
                    spec, lane, noise, contexts[t],
                    tie_seqs_list[t] if cfg.random_tie else None,
                    inputs, horizon, out, decisions, halted, t)
        builder.append_block(
            count=m, total_ops=out.total_ops, max_round=out.max_round,
            preference_changes=out.preference_changes,
            n_decided=out.n_decided, n_distinct=out.n_distinct,
            n_halted=out.n_halted, first_round=out.first_round,
            first_ops=out.first_ops, last_round=out.last_round,
            decided_value=out.decided_value, decisions=decisions,
            halted=halted, budget_exhausted=out.budget_exhausted)
    frame = builder.build()
    _check_frame(frame, spec)
    return frame


def _kernel_overflow_fallback(spec, lane, noise, context, tie_seqs, inputs,
                              horizon, out, decisions, halted, t) -> None:
    """Finish one overflowed kernel trial on the scalar path, in place.

    Writes the scalar sink row into the kernel's column arrays at
    position ``t`` so the block append stays fully columnar.  Inverse
    lane: restart the trial's streams and replay an exactly-extended
    schedule (sink-shaped, chronological payloads).  Legacy lane: the
    schedule matrix *was* the whole horizon, so the fallback redraws at
    a doubled horizon from the live streams — exactly the fast chunk's
    overflow semantics (and the same trials overflow on both engines,
    so the paths stay bit-identical).
    """
    sink = _RowSink()
    if lane is not None:
        if isinstance(context, tuple):
            noise_src, fail_src = context
        else:
            kids = _trial_children(context, 3)
            noise_src = kids[0]
            fail_src = kids[2] if spec.failures.h > 0.0 else None
        rng_noise = make_rng(noise_src)
        rng_fail = make_rng(fail_src) if fail_src is not None else None
        _run_fast_inverse(spec, lane, rng_noise, rng_fail, tie_seqs,
                          inputs, horizon=horizon, sink=sink)
        dec, hlt, total, maxr, chg, budget = sink.row
        out.total_ops[t] = total
        out.max_round[t] = maxr
        out.preference_changes[t] = chg
        out.n_halted[t] = len(hlt)
        out.budget_exhausted[t] = budget
        decisions[t] = dec
        halted[t] = hlt
        _derive_decision_columns(out, t, dec)
        return
    # Legacy lane: continue the live streams through the retry loop.
    rng_noise, rng_fail, delta = context
    result = _fast_attempts(spec, noise, delta, rng_noise, rng_fail,
                            tie_seqs, inputs, horizon=horizon * 2,
                            attempts=9)
    out.total_ops[t] = result.total_ops
    out.max_round[t] = result.max_round
    out.preference_changes[t] = result.preference_changes
    out.n_halted[t] = len(result.halted)
    out.budget_exhausted[t] = result.budget_exhausted
    decisions[t] = tuple((pid, dec.value, dec.round, dec.ops)
                         for pid, dec in result.decisions.items())
    halted[t] = tuple(result.halted)
    _derive_decision_columns(out, t, decisions[t])


def _derive_decision_columns(out, t: int, dec) -> None:
    """Write the shared derived decision fields into row ``t``."""
    (out.n_decided[t], out.n_distinct[t], out.first_round[t],
     out.first_ops[t], out.last_round[t],
     out.decided_value[t]) = derive_decision_fields(dec)


# ---------------------------------------------------------------------------
# Step model
# ---------------------------------------------------------------------------


def _compile_step(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    root = make_rng(seed)
    # Children 0 and 1 are identical to the historical spawn(root, 2);
    # child 2 additionally feeds declarative "random" pickers.
    rng_fail, rng_proto, rng_picker = spawn(root, 3)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    picker = spec.model.picker.build(rng_picker)
    eng = StepEngine(machines, memory, picker,
                     failures=failures, max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="step", machines=machines,
                         memory=memory, _execute=execute)


# ---------------------------------------------------------------------------
# Hybrid model
# ---------------------------------------------------------------------------


def _compile_hybrid(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    root = make_rng(seed)
    (rng_proto,) = spawn(root, 1)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines)
    priorities = (list(model.priorities) if model.priorities is not None
                  else [0] * spec.n)
    initial_used = dict(model.initial_used) or None
    scheduler = HybridScheduler(priorities, model.quantum,
                                initial_used=initial_used,
                                debt_policy=model.debt_policy)
    eng = HybridEngine(machines, memory, scheduler, chooser=model.chooser,
                       max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="hybrid", machines=machines,
                         memory=memory, _execute=execute)
