"""Spec compilation: assemble machines, memory, scheduler, and engine.

:func:`compile_spec` turns a :class:`~repro.api.spec.TrialSpec` plus a seed
into a ready-to-run :class:`CompiledTrial`; :func:`run_trial` is the
one-call form.  The compiler reproduces the exact random-stream spawn
discipline of the historical ``run_noisy_trial`` / ``run_step_trial`` /
``run_hybrid_trial`` entry points, so a legacy call and its spec-based
equivalent produce bit-identical :class:`~repro.sim.results.TrialResult`
values from the same seed — the property the wrapper-equivalence tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro._rng import SeedLike, make_rng, spawn
from repro.errors import ConfigurationError
from repro.failures.injection import FailureModel, NoFailures, RandomHalting
from repro.noise.distributions import PerOpKindNoise
from repro.sched.hybrid import HybridScheduler
from repro.sched.noisy import NoisyScheduler
from repro.sim.build import (
    check_result,
    make_machines,
    make_memory_for,
)
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import lean_horizon_ops, replay_lean
from repro.sim.results import TrialResult
from repro.api.spec import (
    HybridModelSpec,
    NoisyModelSpec,
    StepModelSpec,
    TrialSpec,
)


@dataclass
class CompiledTrial:
    """A spec bound to a seed, assembled and ready to execute once.

    Attributes:
        spec: the trial spec this was compiled from.
        engine: the engine that will actually run (``"auto"`` resolved):
            ``"fast"``, ``"event"``, ``"step"``, or ``"hybrid"``.
        machines: the instantiated process machines (``None`` for the fast
            engine, which replays a closed-form schedule instead).
        memory: the assembled shared memory (``None`` for the fast engine).
    """

    spec: TrialSpec
    engine: str
    machines: Optional[list] = None
    memory: Optional[object] = None
    _execute: Callable[[], TrialResult] = field(default=None, repr=False)

    def run(self) -> TrialResult:
        """Execute the trial and return its result (call once)."""
        result = self._execute()
        result.engine = self.engine
        return result


def resolve_engine(spec: TrialSpec) -> str:
    """The engine a spec will run on, with ``"auto"`` resolved.

    Mirrors the historical selection rule: the vectorized fast engine is
    used for plain lean-consensus under the noisy model with no adaptive
    adversary, no recorder, no round cap, a single (non-per-kind) noise
    distribution, and n >= 256; everything else runs the event engine.
    """
    if isinstance(spec.model, StepModelSpec):
        return "step"
    if isinstance(spec.model, HybridModelSpec):
        return "hybrid"
    if spec.engine != "auto":
        return spec.engine
    fast_ok = (spec.protocol.name == "lean"
               and spec.protocol.factory is None
               and spec.failures.adversary is None
               and not spec.record
               and spec.protocol.round_cap is None
               and spec.model.write_noise is None)
    return "fast" if (fast_ok and spec.n >= 256) else "event"


def compile_spec(spec: TrialSpec, seed: SeedLike = None) -> CompiledTrial:
    """Assemble machines + shared memory + scheduler + engine from a spec."""
    if isinstance(spec.model, NoisyModelSpec):
        return _compile_noisy(spec, seed)
    if isinstance(spec.model, StepModelSpec):
        return _compile_step(spec, seed)
    return _compile_hybrid(spec, seed)


def run_trial(spec: TrialSpec, seed: SeedLike = None) -> TrialResult:
    """Compile and execute one trial; everything derives from ``seed``."""
    return compile_spec(spec, seed).run()


# ---------------------------------------------------------------------------
# Noisy model
# ---------------------------------------------------------------------------


def _compile_noisy(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    root = make_rng(seed)
    rng_noise, rng_dither, rng_fail, rng_proto = spawn(root, 4)
    input_map = spec.input_map()

    noise = model.noise.build()
    if model.write_noise is not None:
        noise = PerOpKindNoise(noise, model.write_noise.build())

    engine = resolve_engine(spec)
    delta = model.delta.build(spec.n, rng_dither)

    if engine == "fast":
        if spec.protocol.name != "lean" or spec.protocol.factory is not None:
            raise ConfigurationError("fast engine only supports plain lean")

        def execute() -> TrialResult:
            return _run_fast(spec.n, noise, delta, rng_noise, rng_fail,
                             input_map, spec.failures.h,
                             spec.stop_after_first_decision,
                             model.allow_degenerate, spec.check)

        return CompiledTrial(spec=spec, engine="fast", _execute=execute)

    scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                               allow_degenerate=model.allow_degenerate)
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    adversary = (spec.failures.adversary.build()
                 if spec.failures.adversary is not None else None)
    eng = NoisyEngine(machines, memory, scheduler,
                      failures=failures,
                      crash_adversary=adversary,
                      max_total_ops=spec.max_total_ops,
                      stop_after_first_decision=spec.stop_after_first_decision)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="event", machines=machines,
                         memory=memory, _execute=execute)


def _run_fast(n, noise, delta, rng_noise, rng_fail, input_map, h,
              stop_first, allow_degenerate, check) -> TrialResult:
    inputs = [input_map[pid] for pid in range(n)]
    horizon = lean_horizon_ops(n)
    for _attempt in range(10):
        scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                                   allow_degenerate=allow_degenerate)
        times = scheduler.presample(n, horizon)
        death_ops = None
        if h > 0:
            death_ops = RandomHalting(h, rng_fail).presample_death_ops(n)
        result = replay_lean(times, inputs, death_ops=death_ops,
                             stop_after_first_decision=stop_first)
        if result is not None:
            return check_result(result, check)
        horizon *= 2
    raise ConfigurationError(
        f"schedule horizon kept overflowing (last tried {horizon} ops); "
        "is the noise distribution effectively degenerate?"
    )


# ---------------------------------------------------------------------------
# Step model
# ---------------------------------------------------------------------------


def _compile_step(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    root = make_rng(seed)
    # Children 0 and 1 are identical to the historical spawn(root, 2);
    # child 2 additionally feeds declarative "random" pickers.
    rng_fail, rng_proto, rng_picker = spawn(root, 3)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    picker = spec.model.picker.build(rng_picker)
    eng = StepEngine(machines, memory, picker,
                     failures=failures, max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="step", machines=machines,
                         memory=memory, _execute=execute)


# ---------------------------------------------------------------------------
# Hybrid model
# ---------------------------------------------------------------------------


def _compile_hybrid(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    root = make_rng(seed)
    (rng_proto,) = spawn(root, 1)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines)
    priorities = (list(model.priorities) if model.priorities is not None
                  else [0] * spec.n)
    initial_used = dict(model.initial_used) or None
    scheduler = HybridScheduler(priorities, model.quantum,
                                initial_used=initial_used,
                                debt_policy=model.debt_policy)
    eng = HybridEngine(machines, memory, scheduler, chooser=model.chooser,
                       max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="hybrid", machines=machines,
                         memory=memory, _execute=execute)
