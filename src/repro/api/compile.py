"""Spec compilation: assemble machines, memory, scheduler, and engine.

:func:`compile_spec` turns a :class:`~repro.api.spec.TrialSpec` plus a seed
into a ready-to-run :class:`CompiledTrial`; :func:`run_trial` is the
one-call form.  The compiler reproduces the exact random-stream spawn
discipline of the historical ``run_noisy_trial`` / ``run_step_trial`` /
``run_hybrid_trial`` entry points, so a legacy call and its spec-based
equivalent produce bit-identical :class:`~repro.sim.results.TrialResult`
values from the same seed — the property the wrapper-equivalence tests
pin down.

Engine selection lives in :func:`resolve_engine_info`: the vectorized
replay family of :data:`repro.sim.fast.FAST_VARIANTS` serves every noisy
spec without an adaptive adversary, recorder, round cap, or per-kind
noise; ``engine="auto"`` additionally keeps small n on the event engine
and records *why* in ``TrialResult.engine_reason``.

:func:`run_trials` is the chunk-level entry point used by the batch
runner: fast-engine specs presample their ``(trials, n, max_ops)``
schedule tensor per chunk and argsort it in a single numpy call, which
amortizes the sort dispatch across a sweep while staying bit-identical to
per-trial execution.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro._seedhash import ReusablePCG64, block_spawn_keys, pcg64_states
from repro.core.invariants import check_agreement, check_validity
from repro.errors import ConfigurationError
from repro.failures.injection import FailureModel, NoFailures, RandomHalting
from repro.noise.distributions import PerOpKindNoise
from repro.sched.delta import DeltaSchedule
from repro.sched.hybrid import HybridScheduler
from repro.sched.noisy import NoisyScheduler
from repro.sim.build import (
    check_result,
    make_machines,
    make_memory_for,
)
from repro.sim.engine import HybridEngine, NoisyEngine, StepEngine
from repro.sim.fast import (
    FAST_VARIANTS,
    _replay_optimized,
    lean_horizon_ops,
    replay,
    replay_lean,
)
from repro.sim.frame import FrameBuilder, ResultFrame
from repro.sim.results import TrialResult
from repro.types import Decision
from repro.api.spec import (
    FailureSpec,
    HybridModelSpec,
    NoisyModelSpec,
    StepModelSpec,
    TrialSpec,
)

#: ``engine="auto"`` keeps n below this on the event engine: the fast
#: engine's fixed costs (full-horizon presample + argsort) only pay off
#: once the event engine's per-op heap traffic dominates.
FAST_AUTO_MIN_N = 256

#: Cap on schedule-tensor elements materialized per fast batch sub-chunk
#: (~128 MB of float64), bounding the batched argsort's working set.
_FAST_CHUNK_ELEMENTS = 16_000_000


@dataclass
class CompiledTrial:
    """A spec bound to a seed, assembled and ready to execute once.

    Attributes:
        spec: the trial spec this was compiled from.
        engine: the engine that will actually run (``"auto"`` resolved):
            ``"fast"``, ``"event"``, ``"step"``, or ``"hybrid"``.
        machines: the instantiated process machines (``None`` for the fast
            engine, which replays a closed-form schedule instead).
        memory: the assembled shared memory (``None`` for the fast engine).
        engine_reason: why ``"auto"`` fell back to the event engine, when
            it did (mirrored onto ``TrialResult.engine_reason``).
    """

    spec: TrialSpec
    engine: str
    machines: Optional[list] = None
    memory: Optional[object] = None
    engine_reason: Optional[str] = None
    _execute: Callable[[], TrialResult] = field(default=None, repr=False)

    def run(self) -> TrialResult:
        """Execute the trial and return its result (call once)."""
        result = self._execute()
        result.engine = self.engine
        result.engine_reason = self.engine_reason
        return result


@dataclass(frozen=True)
class EngineResolution:
    """The outcome of engine selection for one spec.

    Attributes:
        engine: the engine that will run.
        reason: for ``"auto"`` resolutions that fell back to the event
            engine, the structured explanation (``None`` otherwise).
    """

    engine: str
    reason: Optional[str] = None


def fast_ineligibility(spec: TrialSpec) -> Optional[str]:
    """Why a noisy spec cannot run on the vectorized engine (or ``None``).

    The fast engine covers every protocol in
    :data:`repro.sim.fast.FAST_VARIANTS` with random halting compiled to
    per-process death schedules; the remaining exclusions are features
    whose semantics are inherently event-driven.
    """
    if spec.protocol.factory is not None:
        return "the protocol uses an opaque machine factory"
    if spec.protocol.name not in FAST_VARIANTS:
        return (f"protocol {spec.protocol.name!r} has no vectorized replay "
                f"(supported: {sorted(FAST_VARIANTS)})")
    if spec.protocol.round_cap is not None:
        return "round_cap bookkeeping requires the event engine"
    if spec.max_total_ops is not None:
        return ("max_total_ops budgets are enforced by the event engine "
                "(the vectorized replay has no operation-budget stop)")
    if spec.failures.adversary is not None:
        return ("adaptive crash adversaries observe the execution and "
                "cannot be presampled obliviously")
    if spec.record:
        return "record=True history capture requires the event engine"
    if spec.model.write_noise is not None:
        return "per-op-kind write noise requires the event engine"
    return None


def resolve_engine_info(spec: TrialSpec) -> EngineResolution:
    """Resolve the engine a spec will run on, with the fallback reason.

    ``engine="fast"`` on an ineligible spec raises
    :class:`~repro.errors.ConfigurationError` naming the blocker;
    ``engine="auto"`` falls back to the event engine instead and reports
    why in :attr:`EngineResolution.reason` (surfaced as
    ``TrialResult.engine_reason``).
    """
    if isinstance(spec.model, StepModelSpec):
        return EngineResolution("step")
    if isinstance(spec.model, HybridModelSpec):
        return EngineResolution("hybrid")
    if spec.engine == "event":
        return EngineResolution("event")
    why_not = fast_ineligibility(spec)
    if spec.engine == "fast":
        if why_not is not None:
            raise ConfigurationError(
                f'engine="fast" was requested but {why_not}')
        return EngineResolution("fast")
    # engine == "auto"
    if why_not is not None:
        return EngineResolution("event", reason=why_not)
    if spec.n < FAST_AUTO_MIN_N:
        return EngineResolution(
            "event",
            reason=(f"auto keeps n={spec.n} < {FAST_AUTO_MIN_N} on the "
                    'event engine (fast-engine fixed costs dominate at '
                    'small n); pass engine="fast" to override'))
    return EngineResolution("fast")


def resolve_engine(spec: TrialSpec) -> str:
    """The engine a spec will run on, with ``"auto"`` resolved."""
    return resolve_engine_info(spec).engine


def compile_death_ops(failures: FailureSpec, n: int,
                      rng: np.random.Generator) -> Optional[np.ndarray]:
    """Compile a :class:`FailureSpec` into a per-process death schedule.

    Returns the 1-based operation index before which each process halts
    (the ``H_ij`` of Section 3.1.2), drawn with the same RNG discipline as
    the event engine's failure stream, or ``None`` when the spec injects
    no random halting.  Adaptive adversaries cannot be presampled and are
    rejected by :func:`fast_ineligibility` before this point.
    """
    if failures.h <= 0.0:
        return None
    return RandomHalting(failures.h, rng).presample_death_ops(n)


def compile_spec(spec: TrialSpec, seed: SeedLike = None) -> CompiledTrial:
    """Assemble machines + shared memory + scheduler + engine from a spec."""
    if isinstance(spec.model, NoisyModelSpec):
        return _compile_noisy(spec, seed)
    if isinstance(spec.model, StepModelSpec):
        return _compile_step(spec, seed)
    return _compile_hybrid(spec, seed)


def run_trial(spec: TrialSpec, seed: SeedLike = None) -> TrialResult:
    """Compile and execute one trial; everything derives from ``seed``."""
    return compile_spec(spec, seed).run()


def run_trials(spec: TrialSpec,
               seeds: Sequence[SeedLike]) -> List[TrialResult]:
    """Run one spec over several per-trial seeds (a batch chunk).

    Fast-engine specs batch their schedule sampling: the chunk's
    ``(trials, n, max_ops)`` completion-time tensor is argsorted in one
    numpy call and each replay consumes its precomputed row.  Results are
    bit-identical to ``[run_trial(spec, s) for s in seeds]`` — each trial
    still draws from its own seed streams in the compiler's order.
    """
    if isinstance(spec.model, NoisyModelSpec) \
            and resolve_engine_info(spec).engine == "fast":
        return _run_fast_chunk(spec, seeds)
    return [run_trial(spec, s) for s in seeds]


def run_trials_frame(spec: TrialSpec,
                     seeds: Sequence[SeedLike]) -> ResultFrame:
    """Run one spec over several per-trial seeds, returning a frame.

    The columnar twin of :func:`run_trials`:
    ``run_trials_frame(spec, seeds).to_trial_results()`` is bit-identical
    to ``run_trials(spec, seeds)`` for every spec.  Fast-engine specs
    take a fully columnar pipeline (:func:`_run_fast_chunk_frame`) that
    materializes zero per-trial ``TrialResult`` objects; every other
    engine runs trial-by-trial and converts with
    :meth:`~repro.sim.frame.ResultFrame.from_results`.

    One side-effect difference from :func:`run_trials`: the fast lane
    treats *fresh* ``SeedSequence`` seeds as pure values — their spawn
    counters are not advanced (the child streams are derived directly).
    Each call is still bit-identical to the list path, but reusing the
    same seed-sequence objects across calls repeats trials where the
    list path would spawn fresh children; thread a root seed through the
    batch runner (which spawns a new block per call) instead of reusing
    trial sequences.
    """
    if spec.record:
        raise ConfigurationError(
            "record=True histories cannot be stored in a columnar frame "
            "(result.memory would be silently dropped); use the list path")
    info = resolve_engine_info(spec)
    if isinstance(spec.model, NoisyModelSpec) and info.engine == "fast":
        return _run_fast_chunk_frame(spec, seeds)
    return ResultFrame.from_results([run_trial(spec, s) for s in seeds],
                                    spec=spec)


# ---------------------------------------------------------------------------
# Noisy model
# ---------------------------------------------------------------------------


def _noisy_streams(seed: SeedLike):
    """The per-trial stream spawn discipline of the noisy compiler.

    Returns ``(rng_noise, rng_dither, rng_fail, rng_proto)``.  Shared by
    the single-trial and chunked fast paths so their bit-identity cannot
    be broken by one site reordering the spawn (the differential oracle
    mirrors the same order from clonable seed sequences).
    """
    return spawn(make_rng(seed), 4)


def _compile_noisy(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    rng_noise, rng_dither, rng_fail, rng_proto = _noisy_streams(seed)
    input_map = spec.input_map()

    noise = model.noise.build()
    if model.write_noise is not None:
        noise = PerOpKindNoise(noise, model.write_noise.build())

    resolution = resolve_engine_info(spec)
    delta = model.delta.build(spec.n, rng_dither)

    if resolution.engine == "fast":

        def execute() -> TrialResult:
            return _run_fast(spec, noise, delta, rng_noise, rng_fail,
                             rng_proto, input_map)

        return CompiledTrial(spec=spec, engine="fast", _execute=execute)

    scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                               allow_degenerate=model.allow_degenerate)
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    adversary = (spec.failures.adversary.build()
                 if spec.failures.adversary is not None else None)
    eng = NoisyEngine(machines, memory, scheduler,
                      failures=failures,
                      crash_adversary=adversary,
                      max_total_ops=spec.max_total_ops,
                      stop_after_first_decision=spec.stop_after_first_decision)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="event", machines=machines,
                         memory=memory, engine_reason=resolution.reason,
                         _execute=execute)


def _fast_tie_seqs(spec: TrialSpec, rng_proto) -> Optional[list]:
    """Per-process coin seed sequences for the random-tie replay.

    Spawned from the protocol stream exactly like
    :func:`repro.sim.build.make_machines` does for ``"random-tie"``, so
    fast and event runs given the same protocol stream flip identically.
    Sequences (not generators) are kept because every replay attempt must
    restart the coin streams from the top — building a generator from a
    ``SeedSequence`` is pure, so the same sequence can seed any number of
    identical streams.
    """
    if not FAST_VARIANTS[spec.protocol.name].random_tie:
        return None
    seed_seq = rng_proto.bit_generator.seed_seq  # type: ignore[attr-defined]
    return seed_seq.spawn(spec.n)


def _tie_rngs(tie_seqs) -> Optional[list]:
    if tie_seqs is None:
        return None
    return [make_rng(seq) for seq in tie_seqs]


def _fast_prefix_ops(n: int) -> int:
    """Initial argsort prefix (in ops per process) for one replay.

    The full :func:`lean_horizon_ops` horizon is sized so a redraw is
    almost never needed, but the race empirically ends well before
    2·log2(n) rounds — argsorting the whole horizon wastes most of the
    sort (the dominant fast-engine cost at large n).  Replaying a column
    prefix is exact whenever the replay *completes* with no still-running
    process having consumed its entire prefix: every unseen event then
    provably lies after the stopping point, so the executed sequence
    matches the full argsort's.  The replay refuses the remaining case
    (``truncated=True`` returns ``None`` for a first-decision stop with a
    starved process — its dropped events could precede the stop), and
    callers double the prefix on ``None``, falling back to redrawing
    noise only once the full horizon itself overflows.
    """
    return 4 * (int(np.log2(n + 2)) + 10)


def replay_schedule(spec: TrialSpec, times, inputs, death_ops, tie_seqs,
                    prefix: Optional[int] = None, sink=None):
    """Replay one presampled schedule, growing the argsort prefix.

    This is the production fast path over a fixed schedule matrix: replay
    a column prefix, and on ``None`` (horizon overflow *or* a starved
    process at a first-decision stop — see :func:`repro.sim.fast.replay`)
    double the prefix up to the full matrix.  The differential oracle
    drives this exact function, so prefix handling is covered by the
    cross-engine sweep.  Returns ``None`` only when the full matrix
    itself overflows (the caller then redraws noise at a doubled
    horizon).  With a ``sink`` the outcome is appended columnar and
    ``True`` returned instead of a result.
    """
    max_ops = times.shape[1]
    k = min(prefix if prefix is not None else _fast_prefix_ops(spec.n),
            max_ops)
    while True:
        result = replay(times[:, :k] if k < max_ops else times, inputs,
                        variant=spec.protocol.name, death_ops=death_ops,
                        stop_after_first_decision=
                        spec.stop_after_first_decision,
                        tie_rngs=_tie_rngs(tie_seqs),
                        truncated=k < max_ops, sink=sink)
        if result is not None or k >= max_ops:
            return result
        k = min(k * 2, max_ops)


def _fast_attempts(spec: TrialSpec, noise, delta, rng_noise, rng_fail,
                   tie_seqs, inputs, horizon: int,
                   attempts: int = 10) -> TrialResult:
    """The presample-replay-retry loop shared by single and batched runs.

    Each attempt redraws the schedule (and death schedule) from the
    *continuing* per-trial streams at a doubled horizon, so a batched
    first attempt followed by this loop is bit-identical to running the
    loop from the start.
    """
    model = spec.model
    for _attempt in range(attempts):
        scheduler = NoisyScheduler(noise, rng_noise, delta=delta,
                                   allow_degenerate=model.allow_degenerate)
        times = scheduler.presample(spec.n, horizon)
        death_ops = compile_death_ops(spec.failures, spec.n, rng_fail)
        result = replay_schedule(spec, times, inputs, death_ops, tie_seqs)
        if result is not None:
            return check_result(result, spec.check)
        horizon *= 2
    raise ConfigurationError(
        f"schedule horizon kept overflowing (last tried {horizon} ops); "
        "is the noise distribution effectively degenerate?"
    )


def _run_fast(spec: TrialSpec, noise, delta, rng_noise, rng_fail, rng_proto,
              input_map) -> TrialResult:
    inputs = [input_map[pid] for pid in range(spec.n)]
    tie_seqs = _fast_tie_seqs(spec, rng_proto)
    return _fast_attempts(spec, noise, delta, rng_noise, rng_fail, tie_seqs,
                          inputs, horizon=lean_horizon_ops(spec.n))


def _run_fast_chunk(spec: TrialSpec,
                    seeds: Sequence[SeedLike]) -> List[TrialResult]:
    """Trial-batched fast execution: one argsort per schedule sub-chunk.

    Per-trial RNG streams are spawned exactly as :func:`_compile_noisy`
    does, and each trial's schedule is drawn from its own noise stream (the
    per-trial seed discipline the batch runner guarantees); the batching
    win is stacking those schedules and argsorting the whole sub-chunk in
    a single numpy call.
    """
    model = spec.model
    n = spec.n
    input_map = spec.input_map()
    inputs = [input_map[pid] for pid in range(n)]
    noise = model.noise.build()
    horizon = lean_horizon_ops(n)
    prefix = min(_fast_prefix_ops(n), horizon)
    sub = max(1, _FAST_CHUNK_ELEMENTS // max(n * horizon, 1))
    results: List[TrialResult] = []
    for base in range(0, len(seeds), sub):
        block = seeds[base:base + sub]
        contexts = []
        times_list = []
        for seed in block:
            rng_noise, rng_dither, rng_fail, rng_proto = _noisy_streams(seed)
            delta = model.delta.build(n, rng_dither)
            scheduler = NoisyScheduler(
                noise, rng_noise, delta=delta,
                allow_degenerate=model.allow_degenerate)
            times_list.append(scheduler.presample(n, horizon))
            death_ops = compile_death_ops(spec.failures, n, rng_fail)
            tie_seqs = _fast_tie_seqs(spec, rng_proto)
            contexts.append((rng_noise, rng_fail, delta, death_ops, tie_seqs))
        # The chunk-batched argsort: every trial's schedule prefix in a
        # single numpy call (the dominant vector cost of the fast engine).
        orders = np.argsort(
            np.stack([t[:, :prefix] for t in times_list]).reshape(
                len(block), -1),
            axis=1, kind="stable")
        for k, (rng_noise, rng_fail, delta, death_ops, tie_seqs) \
                in enumerate(contexts):
            result = replay(times_list[k][:, :prefix], inputs,
                            variant=spec.protocol.name,
                            death_ops=death_ops,
                            stop_after_first_decision=
                            spec.stop_after_first_decision,
                            tie_rngs=_tie_rngs(tie_seqs), order=orders[k],
                            truncated=prefix < horizon)
            if result is None and prefix < horizon:
                # Prefix overflow (or a starved process at the stop):
                # grow the argsort window on the same schedule.
                result = replay_schedule(spec, times_list[k], inputs,
                                         death_ops, tie_seqs,
                                         prefix=prefix * 2)
            if result is not None:
                result = check_result(result, spec.check)
            else:
                # Rare full-horizon overflow: continue this trial's
                # streams through the serial retry loop (attempt 2 on).
                result = _fast_attempts(spec, noise, delta, rng_noise,
                                        rng_fail, tie_seqs, inputs,
                                        horizon=horizon * 2, attempts=9)
            result.engine = "fast"
            result.engine_reason = None
            results.append(result)
    return results


_SeedSequence = np.random.SeedSequence


def _trial_children(seed: SeedLike, k: int) -> list:
    """The first ``k`` child seed sequences of one trial's stream.

    Matches the children :func:`_noisy_streams` derives (a child's value
    depends only on its index, never on how many siblings are spawned),
    without constructing a root generator or the generators of streams
    the trial will never draw from — the noisy compiler's stream order is
    (noise, dither, fail, proto), and e.g. a no-failure lean trial only
    ever consumes the first two.  Fresh sequences take the direct-child
    construction path (``spawn_key + (i,)``, exactly what
    ``SeedSequence.spawn`` produces) to skip ``spawn()``'s per-call
    overhead; already-spawned-from sequences and live generators keep the
    mutating ``spawn`` — always of all four children, so their spawn
    counters advance exactly as the legacy ``_noisy_streams`` call would.
    """
    if isinstance(seed, _SeedSequence):
        if seed.n_children_spawned:
            return seed.spawn(4)
        entropy, key, pool = seed.entropy, seed.spawn_key, seed.pool_size
        return [_SeedSequence(entropy, spawn_key=key + (i,), pool_size=pool)
                for i in range(k)]
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq.spawn(4)  # type: ignore[attr-defined]
    return [_SeedSequence(seed, spawn_key=(i,)) for i in range(k)]


class _FixedStarts(DeltaSchedule):
    """A delay schedule with precomputed start times and zero delays.

    Stands in for a ``DitheredStart``/``ZeroDelta`` whose random draws
    already happened (the columnar pipeline draws the starts inline), so
    the rare horizon-overflow fallback can rebuild the exact legacy
    scheduler without re-consuming the dither stream.
    """

    bound = 0.0

    def __init__(self, starts: np.ndarray) -> None:
        self._starts = starts

    def start(self, pid: int) -> float:
        return float(self._starts[pid])

    def delay(self, pid: int, op_index: int) -> float:
        return 0.0

    def delays_array(self, pid: int, n_ops: int) -> np.ndarray:
        return np.zeros(n_ops)


def _check_frame(frame: ResultFrame, spec: TrialSpec) -> None:
    """Columnar agreement + validity check (the frame twin of
    :func:`repro.sim.build.check_result`).

    Vectorized over the whole frame; only a *failing* trial rebuilds its
    decisions dict so the error raised is byte-identical to the per-trial
    invariant checkers'.
    """
    if not spec.check or len(frame) == 0:
        return

    def rebuild(i: int):
        return {pid: Decision(value, rnd, ops)
                for pid, value, rnd, ops in frame.column("decisions")[i]}

    disagreed = np.nonzero(frame.column("n_distinct_decisions") > 1)[0]
    if disagreed.size:
        check_agreement(rebuild(int(disagreed[0])))
    input_values = set(spec.input_map().values())
    if len(input_values) == 1:
        (common,) = input_values
        values = frame.column("decided_value")
        bad = np.nonzero(np.isfinite(values) & (values != common))[0]
        if bad.size:
            i = int(bad[0])
            check_validity(dict(frame.column("inputs")[i]), rebuild(i))


def _run_fast_chunk_frame(spec: TrialSpec,
                          seeds: Sequence[SeedLike]) -> ResultFrame:
    """Trial-batched fast execution writing columns directly.

    The columnar twin of :func:`_run_fast_chunk`: the same per-trial seed
    and stream discipline (so results are bit-identical to the list
    path), but the per-trial object pipeline is gone —

    * only the *consumed* RNG streams are instantiated (a no-failure lean
      trial builds 2 generators instead of 4);
    * for the zero/dithered delay schedules of the paper's sweeps the
      completion-time tensor is built inline with four numpy calls
      instead of a ``NoisyScheduler``/``DeltaSchedule`` object pair and
      their per-process Python loop;
    * the replay appends straight into a :class:`FrameBuilder` sink, so
      no ``TrialResult``, inputs dict, decisions dict, or halted set is
      ever materialized;
    * agreement/validity run vectorized over the finished frame.
    """
    model = spec.model
    n = spec.n
    input_map = spec.input_map()
    inputs = [input_map[pid] for pid in range(n)]
    input_pairs = tuple((pid, int(bit)) for pid, bit in enumerate(inputs))
    noise = model.noise.build()
    # Constructing the scheduler once revalidates the distribution with
    # the exact legacy semantics (admissibility or the negative-delay
    # check under allow_degenerate).
    NoisyScheduler(noise, None, allow_degenerate=model.allow_degenerate)
    cfg = FAST_VARIANTS[spec.protocol.name]
    delta_kind = model.delta.kind
    vector_delta = delta_kind in ("zero", "dithered")
    epsilon = model.delta.param("epsilon", 1e-8)
    base_start = model.delta.param("base", 0.0)
    if delta_kind == "dithered" and epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    h = spec.failures.h
    need = 4 if cfg.random_tie else (3 if h > 0.0 else 2)
    horizon = lean_horizon_ops(n)
    prefix = min(_fast_prefix_ops(n), horizon)
    sub = max(1, _FAST_CHUNK_ELEMENTS // max(n * horizon, 1))
    builder = FrameBuilder(spec=spec, n=n, inputs=input_pairs,
                           engine="fast", engine_reason=None)
    # Local bindings for the per-trial loop (it runs 10,000+ times per
    # Figure-1 grid cell; attribute lookups are measurable there).
    generator, pcg64 = np.random.Generator, np.random.PCG64
    sample_array = noise.sample_array
    dithered = delta_kind == "dithered"
    stop_first = spec.stop_after_first_decision
    truncated = prefix < horizon
    shape = (n, horizon)
    # Direct variant dispatch (the per-trial replay() lookup is pure
    # overhead when the whole chunk runs one protocol).
    if cfg.optimized:
        replay_fn = _replay_optimized
    else:
        replay_fn = functools.partial(replay_lean, lag=cfg.lag)
    reusable = ReusablePCG64()
    for start in range(0, len(seeds), sub):
        block = seeds[start:start + sub]
        # Batch the whole block's stream seeding into one vectorized
        # SeedSequence-hash pass when the block matches the batch
        # runner's seed pattern; the per-trial streams then come from a
        # single reused generator via state injection (bit-identical —
        # pinned by tests/test_seedhash.py).
        states = None
        if vector_delta:
            recognized = block_spawn_keys(block)
            if recognized is not None:
                entropy, key_matrix = recognized
                states = {
                    child: pcg64_states(entropy, key_matrix, child)
                    for child in ((0, 1) if dithered else (0,))
                    + ((2,) if h > 0.0 else ())
                }
        contexts = []
        times_list = []
        for k, seed in enumerate(block):
            if states is None:
                children = _trial_children(seed, need)
                rng_noise = generator(pcg64(children[0]))
                rng_dither = (generator(pcg64(children[1]))
                              if (dithered or not vector_delta) else None)
                rng_fail = (generator(pcg64(children[2]))
                            if h > 0.0 else None)
                tie_key = children[3] if cfg.random_tie else None
            else:
                rng_noise = rng_dither = rng_fail = None
                tie_key = (_SeedSequence(seed.entropy,
                                         spawn_key=seed.spawn_key + (3,))
                           if cfg.random_tie else None)
            if vector_delta:
                if dithered:
                    if rng_dither is None:
                        rng_dither = reusable.reset(states[1][k])
                    starts = base_start + rng_dither.uniform(
                        0.0, epsilon, size=n)
                else:
                    starts = np.zeros(n)
                delta = None  # _FixedStarts(starts) built only on fallback
                if rng_noise is None:
                    rng_noise = reusable.reset(states[0][k])
                # Inline presample: bit-identical to
                # NoisyScheduler.presample with a zero-delay schedule.
                incs = sample_array(rng_noise, shape)
                incs += rng_noise.uniform(0.0, 1e-12, size=shape)
                times = incs.cumsum(axis=1)
                times += starts[:, None]
            else:
                starts = None
                delta = model.delta.build(n, rng_dither)
                scheduler = NoisyScheduler(
                    noise, rng_noise, delta=delta,
                    allow_degenerate=model.allow_degenerate)
                times = scheduler.presample(n, horizon)
            if h > 0.0:
                if rng_fail is None:
                    rng_fail = reusable.reset(states[2][k])
                death_ops = compile_death_ops(spec.failures, n, rng_fail)
            else:
                death_ops = None
            tie_seqs = tie_key.spawn(n) if tie_key is not None else None
            times_list.append(times)
            # The overflow-fallback context: in the batched-seeding lane
            # the seeds are fresh SeedSequences and the legacy
            # single-trial lane rederives identical streams from `seed`;
            # in the object lane the live generators themselves are kept
            # so the retry continues their streams exactly like
            # _run_fast_chunk does (a re-derivation would diverge for
            # generator or already-spawned-from seeds).
            if states is None:
                fallback = (rng_noise, rng_fail,
                            delta if delta is not None
                            else _FixedStarts(starts))
            else:
                fallback = seed
            contexts.append((death_ops, tie_seqs, fallback))
        orders = np.argsort(
            np.stack([t[:, :prefix] for t in times_list]).reshape(
                len(block), -1),
            axis=1, kind="stable")
        # One vectorized event->pid map for the whole block; replay takes
        # the ready per-trial list instead of re-deriving it.
        pid_rows = orders // prefix
        for k, (death_ops, tie_seqs, fallback) in enumerate(contexts):
            appended = replay_fn(times_list[k][:, :prefix], inputs,
                                 death_ops=death_ops,
                                 stop_after_first_decision=stop_first,
                                 tie_rngs=_tie_rngs(tie_seqs),
                                 order=pid_rows[k].tolist(),
                                 truncated=truncated, sink=builder)
            if appended is None and truncated:
                appended = replay_schedule(spec, times_list[k], inputs,
                                           death_ops, tie_seqs,
                                           prefix=prefix * 2, sink=builder)
            if appended is None:
                # Rare full-horizon overflow; the one materialized
                # result is the exception path.
                if isinstance(fallback, tuple):
                    # Continue the live per-trial streams through the
                    # serial retry loop, exactly like _run_fast_chunk.
                    rng_noise, rng_fail, delta = fallback
                    result = _fast_attempts(spec, noise, delta, rng_noise,
                                            rng_fail, tie_seqs, inputs,
                                            horizon=horizon * 2, attempts=9)
                    result.engine = "fast"
                    result.engine_reason = None
                else:
                    # Batched-seeding lane: rerun down the legacy
                    # single-trial lane — its attempt 1 rederives the
                    # same streams and redraws the same overflowing
                    # schedule, then the retry loop continues exactly as
                    # the list path would.
                    result = run_trial(spec, fallback)
                builder.append_result(result)
    frame = builder.build()
    _check_frame(frame, spec)
    return frame


# ---------------------------------------------------------------------------
# Step model
# ---------------------------------------------------------------------------


def _compile_step(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    root = make_rng(seed)
    # Children 0 and 1 are identical to the historical spawn(root, 2);
    # child 2 additionally feeds declarative "random" pickers.
    rng_fail, rng_proto, rng_picker = spawn(root, 3)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines, record=spec.record)
    failures: FailureModel = (RandomHalting(spec.failures.h, rng_fail)
                              if spec.failures.h > 0 else NoFailures())
    picker = spec.model.picker.build(rng_picker)
    eng = StepEngine(machines, memory, picker,
                     failures=failures, max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="step", machines=machines,
                         memory=memory, _execute=execute)


# ---------------------------------------------------------------------------
# Hybrid model
# ---------------------------------------------------------------------------


def _compile_hybrid(spec: TrialSpec, seed: SeedLike) -> CompiledTrial:
    model = spec.model
    root = make_rng(seed)
    (rng_proto,) = spawn(root, 1)
    input_map = spec.input_map()
    machines = make_machines(spec.protocol.factory or spec.protocol.name,
                             input_map, rng=rng_proto,
                             round_cap=spec.protocol.round_cap)
    memory = make_memory_for(machines)
    priorities = (list(model.priorities) if model.priorities is not None
                  else [0] * spec.n)
    initial_used = dict(model.initial_used) or None
    scheduler = HybridScheduler(priorities, model.quantum,
                                initial_used=initial_used,
                                debt_policy=model.debt_policy)
    eng = HybridEngine(machines, memory, scheduler, chooser=model.chooser,
                       max_total_ops=spec.max_total_ops)

    def execute() -> TrialResult:
        result = eng.run()
        result.memory = memory  # type: ignore[attr-defined]
        result.machines = machines  # type: ignore[attr-defined]
        return check_result(result, spec.check)

    return CompiledTrial(spec=spec, engine="hybrid", machines=machines,
                         memory=memory, _execute=execute)
