"""repro.api — the declarative trial-configuration layer.

Three pieces:

* :mod:`repro.api.spec` — the frozen, validated, serializable
  :class:`TrialSpec` dataclass tree (protocol / model / noise / failures /
  engine / instrumentation) with ``to_dict`` / ``from_dict`` round-trips;
* :mod:`repro.api.compile` — :func:`compile_spec` / :func:`run_trial`,
  which assemble machines + shared memory + scheduler + engine from a spec
  and a seed;
* :mod:`repro.api.batch` — :class:`BatchRunner` / :func:`run_batch`, which
  fan a spec out over deterministic per-trial child seeds, optionally
  across a ``multiprocessing`` pool, with results bit-identical to serial
  execution.

The legacy one-call runners (``run_noisy_trial`` and friends) are thin
wrappers over this layer, and the experiment harnesses declare their
sweeps as spec grids dispatched through the batch runner.
"""

from repro.api.spec import (
    AdversarySpec,
    DeltaSpec,
    FailureSpec,
    HybridModelSpec,
    NoiseSpec,
    NoisyModelSpec,
    PickerSpec,
    ProtocolSpec,
    StepModelSpec,
    TrialSpec,
    noise_to_spec,
)
from repro.api.compile import (
    CompiledTrial,
    EngineResolution,
    compile_death_ops,
    compile_spec,
    fast_ineligibility,
    resolve_engine,
    resolve_engine_info,
    run_trial,
    run_trials,
)
from repro.api.batch import BatchRunner, run_batch, trial_seed_sequences
from repro.api.compile import run_trials_frame
from repro.api.sweep import (
    LegacySeedLaneWarning,
    SweepAxis,
    SweepCell,
    SweepResult,
    SweepSpec,
    apply_axis_value,
    run_sweep,
)
from repro.sim.frame import FrameBuilder, ResultFrame

__all__ = [
    "AdversarySpec",
    "BatchRunner",
    "CompiledTrial",
    "LegacySeedLaneWarning",
    "DeltaSpec",
    "EngineResolution",
    "FailureSpec",
    "FrameBuilder",
    "HybridModelSpec",
    "NoiseSpec",
    "NoisyModelSpec",
    "PickerSpec",
    "ProtocolSpec",
    "ResultFrame",
    "StepModelSpec",
    "SweepAxis",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "TrialSpec",
    "apply_axis_value",
    "compile_death_ops",
    "compile_spec",
    "fast_ineligibility",
    "noise_to_spec",
    "resolve_engine",
    "resolve_engine_info",
    "run_batch",
    "run_sweep",
    "run_trial",
    "run_trials",
    "run_trials_frame",
    "trial_seed_sequences",
]
