"""Declarative trial configuration: the frozen ``TrialSpec`` tree.

A :class:`TrialSpec` is a complete, validated, *serializable* description
of one consensus trial: which protocol runs, under which scheduling model
(noisy / step / hybrid), with what noise, adversary delays and failures,
on which engine, and with which instrumentation flags.  Specs are frozen
dataclasses, so they can be hashed, compared, used as sweep-grid keys, and
shipped across process boundaries by the batch runner.

Serialization round-trips::

    spec = TrialSpec(n=64, model=NoisyModelSpec(noise=NoiseSpec.of(
        "exponential", mean=1.0)))
    assert TrialSpec.from_dict(spec.to_dict()) == spec

Escape hatches: most component specs can also wrap an opaque *instance*
(an arbitrary :class:`~repro.noise.distributions.NoiseDistribution`, a
custom :class:`~repro.sched.delta.DeltaSchedule`, a machine factory, a
stateful picker, ...).  Opaque specs compile and run exactly like
declarative ones, but they cannot be serialized: :meth:`TrialSpec.to_dict`
raises :class:`~repro.errors.ConfigurationError` naming the opaque field,
and the batch runner refuses to fan them out across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.failures.injection import AdaptiveCrashAdversary, KillLeaderAdversary
from repro.noise.distributions import (
    Constant,
    Exponential,
    Geometric,
    HeavyTail,
    LogNormal,
    Mixture,
    NoiseDistribution,
    Pareto,
    ShiftedExponential,
    SumOf,
    TruncatedNormal,
    TwoPoint,
    Uniform,
)
from repro.sched.delta import (
    ConstantDelta,
    DeltaSchedule,
    DitheredStart,
    RandomDelta,
    StaggeredStart,
    ZeroDelta,
)
from repro.sched.pickers import (
    AlternatingPicker,
    Picker,
    RandomPicker,
    RoundRobinPicker,
    ScriptedPicker,
)
from repro.sched.statistical import StatisticalDelta

SPEC_VERSION = 1

#: Built-in protocol names accepted by ``ProtocolSpec`` (and by
#: :func:`repro.sim.build.make_machines`).
PROTOCOL_NAMES = ("lean", "optimized", "eager", "conservative",
                  "random-tie", "shared-coin", "bounded")

#: Marker kind for specs wrapping an arbitrary live object.
OPAQUE = "opaque"

Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Mapping[str, Any]) -> Params:
    """Normalize a params mapping to a sorted, hashable tuple of pairs."""
    out = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((str(key), value))
    return tuple(out)


def _params_dict(params: Params) -> Dict[str, Any]:
    return {k: (list(v) if isinstance(v, tuple) else v) for k, v in params}


# ---------------------------------------------------------------------------
# Noise
# ---------------------------------------------------------------------------

#: kind -> (class, constructor keyword names)
NOISE_KINDS: Dict[str, tuple] = {
    "exponential": (Exponential, ("mean",)),
    "shifted-exponential": (ShiftedExponential, ("shift", "exp_mean")),
    "uniform": (Uniform, ("low", "high")),
    "geometric": (Geometric, ("p",)),
    "two-point": (TwoPoint, ("a", "b", "p")),
    "truncated-normal": (TruncatedNormal, ("mu", "sigma", "low", "high")),
    "heavy-tail": (HeavyTail, ("k_cap",)),
    "constant": (Constant, ("value",)),
    "lognormal": (LogNormal, ("mu", "sigma")),
    "pareto": (Pareto, ("alpha",)),
}

#: exact class -> (kind, attr-name -> param-name)
_NOISE_CLASS_TO_KIND = {
    Exponential: ("exponential", {"exp_mean": "mean"}),
    ShiftedExponential: ("shifted-exponential", {}),
    Uniform: ("uniform", {}),
    Geometric: ("geometric", {}),
    TwoPoint: ("two-point", {}),
    TruncatedNormal: ("truncated-normal", {}),
    HeavyTail: ("heavy-tail", {}),
    Constant: ("constant", {}),
    LogNormal: ("lognormal", {}),
    Pareto: ("pareto", {}),
}


@dataclass(frozen=True)
class NoiseSpec:
    """Declarative description of a noise distribution F.

    ``kind`` is one of :data:`NOISE_KINDS`, ``"sum-of"``, ``"mixture"``, or
    ``"opaque"``.  Compound kinds carry component specs; ``"opaque"`` wraps
    a live :class:`NoiseDistribution` (non-serializable).
    """

    kind: str
    params: Params = ()
    components: Tuple["NoiseSpec", ...] = ()
    weights: Tuple[float, ...] = ()
    instance: Optional[NoiseDistribution] = None

    def __post_init__(self) -> None:
        if self.kind == OPAQUE:
            if not isinstance(self.instance, NoiseDistribution):
                raise ConfigurationError(
                    "opaque NoiseSpec requires a NoiseDistribution instance")
            return
        if self.kind == "sum-of":
            if len(self.components) != 1:
                raise ConfigurationError(
                    "sum-of noise requires exactly one component")
        elif self.kind == "mixture":
            if not self.components:
                raise ConfigurationError(
                    "mixture noise requires at least one component")
            if self.weights and len(self.weights) != len(self.components):
                raise ConfigurationError(
                    "mixture weights must match components")
        elif self.kind not in NOISE_KINDS:
            raise ConfigurationError(
                f"unknown noise kind {self.kind!r}; expected one of "
                f"{sorted(NOISE_KINDS) + ['sum-of', 'mixture', OPAQUE]}")
        else:
            _, allowed = NOISE_KINDS[self.kind]
            bad = [k for k, _ in self.params if k not in allowed]
            if bad:
                raise ConfigurationError(
                    f"noise kind {self.kind!r} does not take params {bad}; "
                    f"allowed: {list(allowed)}")
        # Constructing once validates the parameter values eagerly.
        self.build()

    @classmethod
    def of(cls, kind: str, **params: Any) -> "NoiseSpec":
        return cls(kind=kind, params=_freeze_params(params))

    @property
    def serializable(self) -> bool:
        return (self.kind != OPAQUE
                and all(c.serializable for c in self.components))

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def build(self) -> NoiseDistribution:
        """Construct the live :class:`NoiseDistribution`."""
        if self.kind == OPAQUE:
            return self.instance
        kwargs = dict(self.params)
        if self.kind == "sum-of":
            return SumOf(self.components[0].build(), **kwargs)
        if self.kind == "mixture":
            comps = [c.build() for c in self.components]
            weights = list(self.weights) if self.weights else None
            return Mixture(comps, weights=weights)
        cls, _ = NOISE_KINDS[self.kind]
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == OPAQUE:
            raise ConfigurationError(
                f"noise spec wraps an opaque instance ({self.instance!r}) "
                "and cannot be serialized")
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = _params_dict(self.params)
        if self.components:
            out["components"] = [c.to_dict() for c in self.components]
        if self.weights:
            out["weights"] = list(self.weights)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NoiseSpec":
        return cls(
            kind=data["kind"],
            params=_freeze_params(data.get("params", {})),
            components=tuple(cls.from_dict(c)
                             for c in data.get("components", ())),
            weights=tuple(float(w) for w in data.get("weights", ())),
        )


def noise_to_spec(dist: NoiseDistribution) -> NoiseSpec:
    """Derive the declarative spec of a live distribution.

    Exact (round-trippable) for every built-in distribution class,
    including :class:`SumOf` and :class:`Mixture`; unknown subclasses are
    wrapped as opaque specs, which run fine but cannot be serialized.
    """
    if isinstance(dist, NoiseSpec):
        return dist
    cls = type(dist)
    if cls is SumOf:
        return NoiseSpec(kind="sum-of", params=_freeze_params({"k": dist.k}),
                         components=(noise_to_spec(dist.base),))
    if cls is Mixture:
        return NoiseSpec(kind="mixture",
                         components=tuple(noise_to_spec(c)
                                          for c in dist.components),
                         weights=tuple(dist.weights))
    entry = _NOISE_CLASS_TO_KIND.get(cls)
    if entry is None:
        return NoiseSpec(kind=OPAQUE, instance=dist)
    kind, renames = entry
    _, allowed = NOISE_KINDS[kind]
    params = {}
    for attr_or_param in allowed:
        attr = attr_or_param
        for attr_name, param_name in renames.items():
            if param_name == attr_or_param:
                attr = attr_name
        params[attr_or_param] = getattr(dist, attr)
    return NoiseSpec.of(kind, **params)


# ---------------------------------------------------------------------------
# Adversary delays (Delta)
# ---------------------------------------------------------------------------

DELTA_KINDS = ("zero", "constant", "staggered", "dithered", "random",
               "statistical")

_DELTA_PARAMS = {
    "zero": (),
    "constant": ("delay", "start_time"),
    "staggered": ("stagger",),
    "dithered": ("epsilon", "base"),
    "random": ("bound", "max_ops"),
    "statistical": ("mean_bound", "style", "burst_every", "burst_scale"),
}


@dataclass(frozen=True)
class DeltaSpec:
    """The adversary's delay schedule.

    ``"dithered"`` is the paper's Figure-1 setting (equal starts dithered
    by U(0, epsilon), zero delays) and the default.  ``"dithered"`` and
    ``"random"`` consume the trial's dither random stream at compile time;
    the rest are deterministic.  An opaque spec wraps a live
    :class:`DeltaSchedule` instance.
    """

    kind: str = "dithered"
    params: Params = ()
    instance: Optional[DeltaSchedule] = None

    def __post_init__(self) -> None:
        if self.kind == OPAQUE:
            if not isinstance(self.instance, DeltaSchedule):
                raise ConfigurationError(
                    "opaque DeltaSpec requires a DeltaSchedule instance")
            return
        if self.kind not in DELTA_KINDS:
            raise ConfigurationError(
                f"unknown delta kind {self.kind!r}; expected one of "
                f"{list(DELTA_KINDS) + [OPAQUE]}")
        allowed = _DELTA_PARAMS[self.kind]
        bad = [k for k, _ in self.params if k not in allowed]
        if bad:
            raise ConfigurationError(
                f"delta kind {self.kind!r} does not take params {bad}; "
                f"allowed: {list(allowed)}")

    @classmethod
    def of(cls, kind: str, **params: Any) -> "DeltaSpec":
        return cls(kind=kind, params=_freeze_params(params))

    @property
    def serializable(self) -> bool:
        return self.kind != OPAQUE

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def build(self, n: int, rng) -> DeltaSchedule:
        """Construct the schedule (``rng`` feeds the randomized kinds)."""
        if self.kind == OPAQUE:
            return self.instance
        kwargs = dict(self.params)
        if self.kind == "zero":
            return ZeroDelta()
        if self.kind == "constant":
            return ConstantDelta(**kwargs)
        if self.kind == "staggered":
            return StaggeredStart(**kwargs)
        if self.kind == "dithered":
            return DitheredStart(n, rng, **kwargs)
        if self.kind == "random":
            kwargs.setdefault("max_ops", 400)
            return RandomDelta(rng=rng, n=n, **kwargs)
        return StatisticalDelta(n=n, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == OPAQUE:
            raise ConfigurationError(
                f"delta spec wraps an opaque instance ({self.instance!r}) "
                "and cannot be serialized")
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = _params_dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeltaSpec":
        return cls(kind=data["kind"],
                   params=_freeze_params(data.get("params", {})))


# ---------------------------------------------------------------------------
# Step pickers
# ---------------------------------------------------------------------------

PICKER_KINDS = ("random", "round-robin", "alternating", "scripted")

_PICKER_PARAMS = {
    "random": (),
    "round-robin": (),
    "alternating": (),
    "scripted": ("script", "exhausted"),
}


@dataclass(frozen=True)
class PickerSpec:
    """Step-choice strategy for the sequential (choice-based) engine."""

    kind: str = "random"
    params: Params = ()
    instance: Optional[Picker] = None

    def __post_init__(self) -> None:
        if self.kind == OPAQUE:
            if not isinstance(self.instance, Picker):
                raise ConfigurationError(
                    "opaque PickerSpec requires a Picker instance")
            return
        if self.kind not in PICKER_KINDS:
            raise ConfigurationError(
                f"unknown picker kind {self.kind!r}; expected one of "
                f"{list(PICKER_KINDS) + [OPAQUE]}")
        allowed = _PICKER_PARAMS[self.kind]
        bad = [k for k, _ in self.params if k not in allowed]
        if bad:
            raise ConfigurationError(
                f"picker kind {self.kind!r} does not take params {bad}; "
                f"allowed: {list(allowed)}")

    @classmethod
    def of(cls, kind: str, **params: Any) -> "PickerSpec":
        return cls(kind=kind, params=_freeze_params(params))

    @property
    def serializable(self) -> bool:
        return self.kind != OPAQUE

    def build(self, rng) -> Picker:
        if self.kind == OPAQUE:
            return self.instance
        if self.kind == "random":
            return RandomPicker(rng)
        if self.kind == "round-robin":
            return RoundRobinPicker()
        if self.kind == "alternating":
            return AlternatingPicker()
        kwargs = dict(self.params)
        kwargs["script"] = list(kwargs.get("script", ()))
        return ScriptedPicker(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == OPAQUE:
            raise ConfigurationError(
                f"picker spec wraps an opaque instance ({self.instance!r}) "
                "and cannot be serialized")
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = _params_dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PickerSpec":
        return cls(kind=data["kind"],
                   params=_freeze_params(data.get("params", {})))


# ---------------------------------------------------------------------------
# Protocol and failures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolSpec:
    """Which consensus protocol the processes run."""

    name: str = "lean"
    round_cap: Optional[int] = None
    factory: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.factory is None and self.name not in PROTOCOL_NAMES:
            raise ConfigurationError(
                f"unknown protocol {self.name!r}; expected one of "
                f"{list(PROTOCOL_NAMES)} (or pass factory=...)")
        if self.round_cap is not None and self.round_cap < 1:
            raise ConfigurationError(
                f"round_cap must be >= 1, got {self.round_cap}")

    @property
    def serializable(self) -> bool:
        return self.factory is None

    def to_dict(self) -> Dict[str, Any]:
        if self.factory is not None:
            raise ConfigurationError(
                "protocol spec wraps an opaque machine factory and cannot "
                "be serialized")
        return {"name": self.name, "round_cap": self.round_cap}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolSpec":
        return cls(name=data.get("name", "lean"),
                   round_cap=data.get("round_cap"))


@dataclass(frozen=True)
class AdversarySpec:
    """An adaptive crash adversary with a crash budget (Section 10)."""

    kind: str = "kill-leader"
    budget: int = 0
    lead: int = 2
    instance: Optional[AdaptiveCrashAdversary] = None

    def __post_init__(self) -> None:
        if self.instance is not None:
            return
        if self.kind != "kill-leader":
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; expected "
                "'kill-leader' (or pass instance=...)")
        if self.budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {self.budget}")
        if self.lead < 1:
            raise ConfigurationError(f"lead must be >= 1, got {self.lead}")

    @property
    def serializable(self) -> bool:
        return self.instance is None

    def build(self) -> AdaptiveCrashAdversary:
        if self.instance is not None:
            return self.instance
        return KillLeaderAdversary(budget=self.budget, lead=self.lead)

    def to_dict(self) -> Dict[str, Any]:
        if self.instance is not None:
            raise ConfigurationError(
                "adversary spec wraps an opaque instance and cannot be "
                "serialized")
        return {"kind": self.kind, "budget": self.budget, "lead": self.lead}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversarySpec":
        return cls(kind=data.get("kind", "kill-leader"),
                   budget=int(data.get("budget", 0)),
                   lead=int(data.get("lead", 2)))


@dataclass(frozen=True)
class FailureSpec:
    """Failure injection: random halting and/or an adaptive adversary."""

    h: float = 0.0
    adversary: Optional[AdversarySpec] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.h < 1.0:
            raise ConfigurationError(f"h must be in [0,1), got {self.h}")

    @property
    def serializable(self) -> bool:
        return self.adversary is None or self.adversary.serializable

    def to_dict(self) -> Dict[str, Any]:
        return {"h": self.h,
                "adversary": (self.adversary.to_dict()
                              if self.adversary is not None else None)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSpec":
        adv = data.get("adversary")
        return cls(h=float(data.get("h", 0.0)),
                   adversary=(AdversarySpec.from_dict(adv)
                              if adv is not None else None))


# ---------------------------------------------------------------------------
# Scheduling models
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NoisyModelSpec:
    """The noisy-scheduling model of Section 3.1 (the paper's core)."""

    noise: NoiseSpec
    write_noise: Optional[NoiseSpec] = None
    delta: DeltaSpec = DeltaSpec()
    allow_degenerate: bool = False

    model_kind = "noisy"

    def __post_init__(self) -> None:
        if isinstance(self.noise, NoiseDistribution):
            object.__setattr__(self, "noise", noise_to_spec(self.noise))
        if isinstance(self.write_noise, NoiseDistribution):
            object.__setattr__(self, "write_noise",
                               noise_to_spec(self.write_noise))

    @property
    def serializable(self) -> bool:
        return (self.noise.serializable and self.delta.serializable
                and (self.write_noise is None
                     or self.write_noise.serializable))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.model_kind,
            "noise": self.noise.to_dict(),
            "write_noise": (self.write_noise.to_dict()
                            if self.write_noise is not None else None),
            "delta": self.delta.to_dict(),
            "allow_degenerate": self.allow_degenerate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NoisyModelSpec":
        wn = data.get("write_noise")
        return cls(
            noise=NoiseSpec.from_dict(data["noise"]),
            write_noise=NoiseSpec.from_dict(wn) if wn is not None else None,
            delta=DeltaSpec.from_dict(data.get("delta", {"kind": "dithered"})),
            allow_degenerate=bool(data.get("allow_degenerate", False)),
        )


@dataclass(frozen=True)
class StepModelSpec:
    """The sequential choice-based model (explicit interleaving, no clock)."""

    picker: PickerSpec = PickerSpec()

    model_kind = "step"

    def __post_init__(self) -> None:
        if isinstance(self.picker, Picker):
            object.__setattr__(self, "picker",
                               PickerSpec(kind=OPAQUE, instance=self.picker))

    @property
    def serializable(self) -> bool:
        return self.picker.serializable

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.model_kind, "picker": self.picker.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StepModelSpec":
        return cls(picker=PickerSpec.from_dict(
            data.get("picker", {"kind": "random"})))


@dataclass(frozen=True)
class HybridModelSpec:
    """The hybrid quantum/priority uniprocessor model (Section 7)."""

    quantum: int = 8
    priorities: Optional[Tuple[int, ...]] = None
    initial_used: Tuple[Tuple[int, int], ...] = ()
    debt_policy: str = "holder"
    chooser: Optional[Callable] = None

    model_kind = "hybrid"

    def __post_init__(self) -> None:
        if self.quantum < 1:
            raise ConfigurationError(
                f"quantum must be >= 1, got {self.quantum}")
        if self.priorities is not None:
            object.__setattr__(self, "priorities", tuple(self.priorities))
        object.__setattr__(self, "initial_used",
                           tuple((int(p), int(u))
                                 for p, u in dict(self.initial_used).items()))

    @property
    def serializable(self) -> bool:
        return self.chooser is None

    def to_dict(self) -> Dict[str, Any]:
        if self.chooser is not None:
            raise ConfigurationError(
                "hybrid model spec wraps an opaque chooser callable and "
                "cannot be serialized")
        return {
            "kind": self.model_kind,
            "quantum": self.quantum,
            "priorities": (list(self.priorities)
                           if self.priorities is not None else None),
            "initial_used": [list(pair) for pair in self.initial_used],
            "debt_policy": self.debt_policy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HybridModelSpec":
        prio = data.get("priorities")
        return cls(
            quantum=int(data.get("quantum", 8)),
            priorities=tuple(prio) if prio is not None else None,
            initial_used=tuple((int(p), int(u))
                               for p, u in data.get("initial_used", ())),
            debt_policy=data.get("debt_policy", "holder"),
        )


ModelSpec = Union[NoisyModelSpec, StepModelSpec, HybridModelSpec]

_MODEL_CLASSES = {cls.model_kind: cls
                  for cls in (NoisyModelSpec, StepModelSpec, HybridModelSpec)}

ENGINES = ("auto", "event", "fast", "kernel")


# ---------------------------------------------------------------------------
# The top-level spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialSpec:
    """A complete declarative description of one consensus trial.

    Attributes:
        n: number of processes.
        model: the scheduling model (noisy / step / hybrid).
        protocol: which protocol the processes run.
        failures: failure injection configuration.
        engine: ``"auto"``, ``"event"``, ``"fast"``, or ``"kernel"``
            (noisy model only).
        backend: array backend for the lockstep kernel — ``"numpy"``
            (default), ``"numba"``, or ``"cupy"`` (noisy model only).
            Non-numpy backends only apply when the kernel engine runs;
            an unavailable or uncovered backend degrades to numpy with
            the reason recorded on the result's ``engine_reason``,
            unless ``engine="kernel"`` was pinned explicitly (which
            raises instead).
        inputs: ``"half"`` for the paper's half-and-half split, or an
            explicit tuple of ``(pid, bit)`` pairs (sequences/dicts of bits
            are normalized at construction).
        stop_after_first_decision: measure the Figure-1 quantity and stop.
        record: attach a history recorder (event engine only).
        max_total_ops: operation budget (guards non-terminating schedules).
        check: verify agreement and validity before returning.
    """

    n: int
    model: ModelSpec
    protocol: ProtocolSpec = ProtocolSpec()
    failures: FailureSpec = FailureSpec()
    engine: str = "auto"
    backend: str = "numpy"
    inputs: Union[str, Tuple[Tuple[int, int], ...]] = "half"
    stop_after_first_decision: bool = False
    record: bool = False
    max_total_ops: Optional[int] = None
    check: bool = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if not isinstance(self.model,
                          (NoisyModelSpec, StepModelSpec, HybridModelSpec)):
            raise ConfigurationError(
                f"model must be a model spec, got {type(self.model).__name__}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if (self.engine != "auto"
                and not isinstance(self.model, NoisyModelSpec)):
            raise ConfigurationError(
                f"engine={self.engine!r} only applies to the noisy "
                "scheduling model (step/hybrid models pick their own "
                "engine); leave engine=\"auto\"")
        # Late import: repro.sim's package __init__ imports this module,
        # so the backend registry cannot be imported at spec-module load.
        from repro.sim.backend import BACKEND_NAMES
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKEND_NAMES}")
        if (self.backend != "numpy"
                and not isinstance(self.model, NoisyModelSpec)):
            raise ConfigurationError(
                f"backend={self.backend!r} only applies to the noisy "
                "scheduling model (the lockstep kernel); leave "
                "backend=\"numpy\"")
        object.__setattr__(self, "inputs", _normalize_inputs(self.inputs))
        if self.inputs != "half":
            pids = [p for p, _ in self.inputs]
            if len(set(pids)) != len(pids):
                raise ConfigurationError("duplicate pid in inputs")
            for _, bit in self.inputs:
                if bit not in (0, 1):
                    raise ConfigurationError(
                        f"input bits must be 0 or 1, got {bit!r}")

    # -- convenience -------------------------------------------------------

    @property
    def serializable(self) -> bool:
        """True when :meth:`to_dict` will succeed (no opaque components)."""
        return (self.model.serializable and self.protocol.serializable
                and self.failures.serializable)

    def replace(self, **changes: Any) -> "TrialSpec":
        """A modified copy (the frozen-dataclass idiom, re-exported)."""
        import dataclasses
        return dataclasses.replace(self, **changes)

    def input_map(self) -> Dict[int, int]:
        """The pid -> bit assignment this spec describes."""
        from repro.sim.build import half_and_half
        if self.inputs == "half":
            return half_and_half(self.n)
        return {pid: bit for pid, bit in self.inputs}

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dict; ``from_dict`` round-trips it exactly."""
        data = {
            "version": SPEC_VERSION,
            "n": self.n,
            "model": self.model.to_dict(),
            "protocol": self.protocol.to_dict(),
            "failures": self.failures.to_dict(),
            "engine": self.engine,
            "inputs": (self.inputs if self.inputs == "half"
                       else [list(pair) for pair in self.inputs]),
            "stop_after_first_decision": self.stop_after_first_decision,
            "record": self.record,
            "max_total_ops": self.max_total_ops,
            "check": self.check,
        }
        # The default backend is omitted so serialized specs (and hence
        # job ids / cache keys derived from them) are unchanged from
        # before the field existed.
        if self.backend != "numpy":
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported spec version {version!r} "
                f"(this library reads version {SPEC_VERSION})")
        model_data = data["model"]
        model_cls = _MODEL_CLASSES.get(model_data.get("kind"))
        if model_cls is None:
            raise ConfigurationError(
                f"unknown model kind {model_data.get('kind')!r}")
        inputs = data.get("inputs", "half")
        return cls(
            n=int(data["n"]),
            model=model_cls.from_dict(model_data),
            protocol=ProtocolSpec.from_dict(data.get("protocol", {})),
            failures=FailureSpec.from_dict(data.get("failures", {})),
            engine=data.get("engine", "auto"),
            backend=data.get("backend", "numpy"),
            inputs=(inputs if inputs == "half"
                    else tuple((int(p), int(b)) for p, b in inputs)),
            stop_after_first_decision=bool(
                data.get("stop_after_first_decision", False)),
            record=bool(data.get("record", False)),
            max_total_ops=data.get("max_total_ops"),
            check=bool(data.get("check", True)),
        )


def _normalize_inputs(inputs) -> Union[str, Tuple[Tuple[int, int], ...]]:
    """Accept "half" / None, a dict, a sequence of bits, or (pid, bit) pairs."""
    if inputs is None or inputs == "half":
        return "half"
    if isinstance(inputs, Mapping):
        return tuple(sorted((int(p), int(b)) for p, b in inputs.items()))
    items = list(inputs)
    if items and isinstance(items[0], (tuple, list)) and len(items[0]) == 2:
        return tuple(sorted((int(p), int(b)) for p, b in items))
    return tuple((pid, int(b)) for pid, b in enumerate(items))
