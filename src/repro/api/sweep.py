"""Declarative sweeps: a frozen grid of trial specs + columnar execution.

Every experiment harness used to hand-roll the same plumbing: nested
loops over parameter values, a mutated :class:`~repro.api.spec.TrialSpec`
per cell, a ``BatchRunner`` call, and list comprehensions over the
results.  A :class:`SweepSpec` replaces that with a declaration — a base
spec plus named :class:`SweepAxis` values that mutate spec fields — and
:func:`run_sweep` executes the compiled grid through the batch runner
with the exact historical seed discipline (one root generator, child
seed blocks consumed in grid order), returning one columnar
:class:`~repro.sim.frame.ResultFrame` per cell.

Axes address spec fields by dotted path (``"n"``, ``"failures.h"``,
``"model.noise"``, ``"protocol.name"``) including the parameter tuples
of kind-based component specs (``"model.noise.params.sigma"``,
``"model.delta.params.style"``)::

    sweep = SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(
            noise=NoiseSpec.of("exponential", mean=1.0)),
            stop_after_first_decision=True),
        axes=(SweepAxis("model.noise", noise_specs, name="distribution",
                        labels=names),
              SweepAxis("n", (1, 10, 100, 1000, 10_000, 100_000))),
        trials=10_000)
    result = run_sweep(sweep, seed=2000, workers=8,
                       cache_dir="~/.cache/repro-sweeps")
    frame = result.frame(distribution="exponential(1)", n=100)

The opt-in on-disk cache keys each cell by a content hash of (cell spec,
trial count, root seed state, cell seed offset, code version), so a
``--paper``-scale re-run resumes from the completed cells instead of
recomputing, and a changed spec, seed, or code version misses cleanly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import warnings
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._atomicio import atomic_write_bytes
from repro._rng import SeedLike, make_rng
from repro._seedhash import SeedBlock
from repro.errors import ConfigurationError
from repro.sim.frame import ResultFrame
from repro.api.batch import BatchRunner, trial_seed_sequences
from repro.api.spec import SPEC_VERSION, TrialSpec, _freeze_params

#: Bump when an engine/compiler change may alter trial results; stale
#: cache entries then miss instead of resurrecting old numbers.
CACHE_CODE_VERSION = f"spec{SPEC_VERSION}-kernel2"


class LegacySeedLaneWarning(UserWarning):
    """A sweep ran on the mutating legacy spawn lane of a Generator root.

    Passing a live ``numpy.random.Generator`` as the sweep seed keeps
    the historical behavior — child seeds are *spawned* from the root,
    advancing its spawn counter — which three capabilities of the
    analytic value-seed lane cannot follow:

    * the root's identity (entropy + spawn position) exists only in the
      live object, so the sweep cannot be submitted as a
      :class:`~repro.serve.job.SweepJob` or resumed after a crash;
    * cache keys depend on the counter the caller happened to arrive
      with, so cross-run cache hits are accidental rather than designed;
    * the root mutates as a side effect, coupling the sweep to every
      other consumer of the same generator.

    Pass the seed *value* the generator was built from (an int, ``None``,
    or a fresh ``SeedSequence``) for bit-identical results without the
    side effect — or pass ``legacy_seed_ok=True`` to
    :func:`run_sweep` when the mutation is the point (e.g. a harness
    that deliberately threads one root through several draws).
    """


def _replace_field(obj, parts: Sequence[str], value):
    """Recursively rebuild a frozen spec with one dotted field replaced.

    A ``params`` segment addresses the frozen parameter tuple of a
    kind-based component spec (``NoiseSpec``/``DeltaSpec``/...): the
    named parameter is replaced and the spec revalidated.
    """
    name = parts[0]
    if name == "params" and len(parts) == 2 and hasattr(obj, "params"):
        updated = dict(obj.params)
        updated[parts[1]] = value
        return dataclasses.replace(obj, params=_freeze_params(updated))
    if not hasattr(obj, name):
        raise ConfigurationError(
            f"sweep axis path names unknown field {name!r} on "
            f"{type(obj).__name__}")
    if len(parts) == 1:
        return dataclasses.replace(obj, **{name: value})
    child = getattr(obj, name)
    return dataclasses.replace(obj, **{name: _replace_field(child,
                                                            parts[1:], value)})


def apply_axis_value(spec: TrialSpec, path: str, value) -> TrialSpec:
    """``spec`` with the dotted ``path`` field replaced by ``value``."""
    return _replace_field(spec, path.split("."), value)


@dataclass(frozen=True)
class SweepAxis:
    """One named sweep dimension: a spec field path and its values.

    Attributes:
        path: dotted :class:`TrialSpec` field path the axis mutates.
        values: the values the axis takes, in sweep order.
        name: axis name for coordinates (defaults to the last path
            segment, e.g. ``"h"`` for ``"failures.h"``).
        labels: optional display labels, one per value (e.g. the
            Figure-1 distribution names).
    """

    path: str
    values: Tuple[Any, ...]
    name: Optional[str] = None
    labels: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.path:
            raise ConfigurationError("sweep axis needs a field path")
        if not self.values:
            raise ConfigurationError(
                f"sweep axis {self.path!r} needs at least one value")
        if self.name is None:
            object.__setattr__(self, "name", self.path.rsplit(".", 1)[-1])
        if self.labels is not None:
            object.__setattr__(self, "labels", tuple(self.labels))
            if len(self.labels) != len(self.values):
                raise ConfigurationError(
                    f"axis {self.name!r} has {len(self.values)} values but "
                    f"{len(self.labels)} labels")

    def label(self, index: int) -> str:
        if self.labels is not None:
            return self.labels[index]
        return str(self.values[index])


@dataclass(frozen=True)
class SweepCell:
    """One compiled grid cell: coordinates, labels, and the cell's spec."""

    index: int
    coords: Tuple[Tuple[str, Any], ...]
    labels: Tuple[Tuple[str, str], ...]
    spec: TrialSpec

    def coord(self, name: str):
        for key, value in self.coords:
            if key == name:
                return value
        raise KeyError(name)

    def label(self, name: str) -> str:
        for key, value in self.labels:
            if key == name:
                return value
        raise KeyError(name)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: base spec, named axes, trials per cell.

    The grid is the cartesian product of the axes in declaration order
    (first axis outermost), matching the nesting of the historical
    experiment loops — which is what keeps sweep execution bit-identical
    to them under the shared seed discipline.
    """

    base: TrialSpec
    axes: Tuple[SweepAxis, ...]
    trials: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if self.trials < 0:
            raise ConfigurationError(
                f"trials must be >= 0, got {self.trials}")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate sweep axis names in {names}")

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(axis.values) for axis in self.axes)

    @property
    def size(self) -> int:
        out = 1
        for extent in self.shape:
            out *= extent
        return out

    def cells(self) -> List[SweepCell]:
        """The compiled grid, in execution (row-major) order."""
        out = []
        ranges = [range(len(axis.values)) for axis in self.axes]
        for index, combo in enumerate(itertools.product(*ranges)):
            spec = self.base
            coords = []
            labels = []
            for axis, value_index in zip(self.axes, combo):
                value = axis.values[value_index]
                spec = apply_axis_value(spec, axis.path, value)
                coords.append((axis.name, value))
                labels.append((axis.name, axis.label(value_index)))
            out.append(SweepCell(index=index, coords=tuple(coords),
                                 labels=tuple(labels), spec=spec))
        return out

    def run(self, seed: SeedLike = None, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            legacy_seed_ok: bool = False) -> "SweepResult":
        """Execute the sweep (see :func:`run_sweep`)."""
        return run_sweep(self, seed=seed, workers=workers,
                         cache_dir=cache_dir, legacy_seed_ok=legacy_seed_ok)


@dataclass
class SweepResult:
    """Executed sweep: one columnar frame per grid cell, in grid order."""

    sweep: SweepSpec
    cells: List[SweepCell]
    frames: List[ResultFrame]
    seed_entropy: Optional[int] = None
    cache_hits: int = 0
    #: Which seed lane executed the sweep: ``"analytic"`` (value seeds —
    #: cacheable, resumable, submittable as a job) or ``"legacy-spawn"``
    #: (a live Generator root whose spawn counter was advanced).
    seed_lane: str = "analytic"

    def __iter__(self) -> Iterator[Tuple[SweepCell, ResultFrame]]:
        return iter(zip(self.cells, self.frames))

    def frame(self, **coords) -> ResultFrame:
        """The unique cell frame matching the given coordinates."""
        matches = [
            frame for cell, frame in self
            if all(cell.coord(name) == value
                   for name, value in coords.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{coords} matches {len(matches)} cells (need exactly 1)")
        return matches[0]


def _seed_fingerprint(root: np.random.Generator) -> Tuple[Optional[int],
                                                          tuple, int]:
    seq = root.bit_generator.seed_seq  # type: ignore[attr-defined]
    entropy = getattr(seq, "entropy", None)
    spawn_key = tuple(getattr(seq, "spawn_key", ()))
    spawned = int(getattr(seq, "n_children_spawned", 0))
    return entropy, spawn_key, spawned


def _cell_cache_key(cell: SweepCell, trials: int, entropy, spawn_key,
                    child_offset: int) -> str:
    record = {
        "code": CACHE_CODE_VERSION,
        "spec": cell.spec.to_dict(),
        "trials": trials,
        "entropy": str(entropy),
        "spawn_key": list(spawn_key),
        "child_offset": child_offset,
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _cache_load(cache_dir: str, key: str,
                spec: TrialSpec) -> Optional[ResultFrame]:
    path = os.path.join(cache_dir, f"{key}.npz")
    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=True) as data:
            payload = {name: data[name] for name in data.files}
        return ResultFrame.from_payload(payload, spec=spec)
    except Exception:
        # A truncated/incompatible entry is a miss, not a crash: the
        # cell recomputes and the entry is rewritten.
        return None


def _cache_store(cache_dir: str, key: str, frame: ResultFrame) -> None:
    # Crash-safe by the shared atomic-write discipline: a run killed at
    # any instant (including between the payload write and the rename)
    # never leaves a torn entry under the final name — the next run sees
    # a clean miss and recomputes the cell.
    atomic_write_bytes(os.path.join(cache_dir, f"{key}.npz"),
                       frame.to_npz_bytes())


def run_sweep(sweep: SweepSpec, seed: SeedLike = None,
              workers: Optional[int] = None,
              runner: Optional[BatchRunner] = None,
              cache_dir: Optional[str] = None,
              legacy_seed_ok: bool = False) -> SweepResult:
    """Execute a sweep through the batch runner, one frame per cell.

    Seed discipline: ``seed`` is normalized to a single root generator
    and every cell consumes its own block of child seeds in grid order —
    exactly the historical experiment-loop pattern, so a sweep is
    bit-identical to the loop it replaced, for any ``workers`` value.

    With ``cache_dir``, each finished cell is persisted and a re-run
    loads matching cells instead of recomputing them; cache hits still
    burn the cell's child-seed block so the remaining cells draw
    identical seeds.  Cells with non-serializable specs always compute.

    Int (and fresh ``SeedSequence``) seeds take an *analytic* lane: each
    cell's child-seed block is derived as a :class:`SeedBlock` instead
    of spawning one ``SeedSequence`` object per trial — the same
    ``(entropy, spawn_key)`` identities (bit-identical results, pinned
    by the golden stdout tests), with per-trial object construction
    gone.  Live ``Generator`` roots keep the mutating legacy spawn so
    harnesses that thread one root through several calls still observe
    its counter advance; fresh ``SeedSequence`` roots are treated as
    pure values (their counter is *not* advanced — the same exception
    :func:`~repro.api.compile.run_trials_frame` documents).

    A Generator root emits :class:`LegacySeedLaneWarning` unless
    ``legacy_seed_ok=True``: the legacy lane cannot be cached
    deterministically, resumed, or submitted as a serve job (see the
    warning class for the full limitation), and the executed lane is
    recorded on ``SweepResult.seed_lane`` either way.
    """
    runner = runner if runner is not None else BatchRunner(workers=workers)
    if isinstance(seed, np.random.Generator):
        if not legacy_seed_ok:
            warnings.warn(
                "run_sweep received a live Generator root: taking the "
                "mutating legacy spawn lane (advances the root's spawn "
                "counter; not cacheable-by-value, not resumable, not "
                "submittable as a serve job). Pass the seed value the "
                "generator was built from for the analytic lane, or "
                "legacy_seed_ok=True to silence this warning.",
                LegacySeedLaneWarning, stacklevel=2)
        root = seed
        root_seq = None
        entropy, spawn_key, spawned = _seed_fingerprint(root)
    else:
        root = None
        root_seq = (seed if isinstance(seed, np.random.SeedSequence)
                    else np.random.SeedSequence(seed))
        entropy = root_seq.entropy
        spawn_key = tuple(root_seq.spawn_key)
        spawned = int(root_seq.n_children_spawned)
    cells = sweep.cells()
    frames: List[ResultFrame] = []
    hits = 0
    expanded = cache_dir and os.path.expanduser(cache_dir)
    for cell in cells:
        key = None
        offset = spawned + cell.index * sweep.trials
        if expanded and cell.spec.serializable:
            key = _cell_cache_key(cell, sweep.trials, entropy, spawn_key,
                                  offset)
            cached = _cache_load(expanded, key, cell.spec)
            if cached is not None and len(cached) == sweep.trials:
                if root is not None:
                    trial_seed_sequences(root, sweep.trials)  # burn
                frames.append(cached)
                hits += 1
                continue
        cell_seed = (root if root is not None
                     else SeedBlock(entropy, spawn_key, offset,
                                    sweep.trials,
                                    pool_size=root_seq.pool_size))
        frame = runner.run_frame(cell.spec, sweep.trials, seed=cell_seed)
        if key is not None:
            _cache_store(expanded, key, frame)
        frames.append(frame)
    return SweepResult(sweep=sweep, cells=cells, frames=frames,
                       seed_entropy=entropy if isinstance(entropy, int)
                       else None,
                       cache_hits=hits,
                       seed_lane=("legacy-spawn" if root is not None
                                  else "analytic"))
