"""Parallel batch execution of trial specs with deterministic seeding.

The seed discipline mirrors :func:`repro._rng.spawn`: the root seed (an
int, ``None``, a ``SeedSequence``, or a live ``Generator``) is spawned
into ``n_trials`` independent child ``SeedSequence`` streams, one per
trial, **before** any work is distributed.  Each child is identified by
its ``(entropy, spawn_key)`` pair, which is what actually crosses the
process boundary — so the trial results are bit-identical whether the
batch runs serially, on a 2-worker pool, or on a 16-worker pool, and
identical to the historical ``run_noisy_trials`` loop::

    spec = TrialSpec(n=64, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)))
    serial = run_batch(spec, 100, seed=7)
    parallel = run_batch(spec, 100, seed=7, workers=4)
    assert serial == parallel

Specs that wrap opaque live objects (custom distributions, factories,
stateful pickers...) cannot be pickled declaratively; they still run with
``workers=None``/``1`` but a multi-process request raises
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import SeedLike, make_rng
from repro._seedhash import SeedBlock
from repro.errors import ConfigurationError
from repro.sim.frame import ResultFrame
from repro.sim.results import TrialResult
from repro.api.compile import (
    resolve_engine_info,
    run_trials,
    run_trials_frame,
)
from repro.api.spec import TrialSpec

#: (trial index, entropy, spawn_key) — a picklable child-seed identity.
SeedEntry = Tuple[int, object, Tuple[int, ...]]


def trial_seed_sequences(seed: SeedLike, n_trials: int):
    """One independent child ``SeedSequence`` per trial.

    Matches the child streams of ``spawn(make_rng(seed), n_trials)``: when
    ``seed`` is a live Generator its seed sequence is spawned in place
    (advancing its spawn counter, exactly like the legacy helper), so
    experiment harnesses can thread one root generator through a series of
    batch calls and reproduce their historical sweep outputs.

    For int/``None`` seeds (and ready-made :class:`SeedBlock` values) the
    children are returned as an *analytic* :class:`SeedBlock` — the same
    ``(entropy, spawn_key)`` identities, materialized only on demand, so
    the vectorized seeding lanes never pay per-child ``SeedSequence``
    construction.  Indexing/iterating a block yields real sequences, so
    list-shaped consumers are unaffected.
    """
    if n_trials < 0:
        raise ConfigurationError(f"n_trials must be >= 0, got {n_trials}")
    if isinstance(seed, SeedBlock):
        if len(seed) != n_trials:
            raise ConfigurationError(
                f"seed block carries {len(seed)} trials, expected {n_trials}")
        return seed
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        root = np.random.SeedSequence(seed)
        return SeedBlock(root.entropy, root.spawn_key, 0, n_trials)
    return seq.spawn(n_trials)


def _seed_entries(seqs) -> List[SeedEntry]:
    if isinstance(seqs, SeedBlock):
        return [(idx, seqs.entropy, seqs.spawn_key + (seqs.start + idx,))
                for idx in range(len(seqs))]
    return [(idx, seq.entropy, tuple(seq.spawn_key))
            for idx, seq in enumerate(seqs)]


def _rebuild(entry: SeedEntry) -> np.random.SeedSequence:
    _, entropy, spawn_key = entry
    return np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)


def _strip_artifacts(result: TrialResult) -> TrialResult:
    """Drop the non-field engine artifacts before crossing a process pipe."""
    for attr in ("memory", "machines"):
        result.__dict__.pop(attr, None)
    return result


def _run_chunk(payload) -> List[Tuple[int, TrialResult]]:
    """Pool worker: run a chunk of trials of one (serialized) spec.

    Dispatches through :func:`repro.api.compile.run_trials` with the
    engine the batch runner resolved for the *whole* batch, so
    fast-family specs amortize their schedule sampling across the chunk
    and the recorded engine never depends on worker chunking.
    """
    spec_dict, entries, engine = payload
    spec = TrialSpec.from_dict(spec_dict)
    results = run_trials(spec, [_rebuild(entry) for entry in entries],
                         engine=engine)
    return [(entry[0], _strip_artifacts(result))
            for entry, result in zip(entries, results)]


def _run_chunk_frame(payload) -> Tuple[int, dict]:
    """Pool worker for the columnar path: one chunk -> one frame payload.

    Ships a dict of numpy columns back over the pipe (tagged with the
    chunk's first trial index for reassembly) instead of a pickled list
    of per-trial dataclasses.
    """
    spec_dict, entries, engine = payload
    spec = TrialSpec.from_dict(spec_dict)
    frame = run_trials_frame(spec, [_rebuild(entry) for entry in entries],
                             engine=engine)
    return entries[0][0], frame.to_payload()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def batch_engine(spec: TrialSpec, n_trials: int) -> Optional[str]:
    """The engine a batch of ``n_trials`` trials of ``spec`` resolves to.

    The single source of the batch-granular engine choice: the batch
    runner resolves it once per batch, and the serve executor resolves
    it once per *cell* (then threads it through every chunk of that
    cell), so the recorded engine — and therefore the drawn streams —
    never depend on worker or chunk boundaries.
    """
    return resolve_engine_info(spec, trials=n_trials).engine


class BatchRunner:
    """Executes batches of trials, optionally across a process pool.

    Args:
        workers: number of worker processes.  ``None``, ``0``, or ``1``
            runs serially in-process (and preserves the per-trial
            ``result.memory`` / ``result.machines`` artifacts); ``"auto"``
            uses the machine's CPU count.
        chunk_size: trials per work unit shipped to a worker.  Defaults to
            an even split over ~4 units per worker, which balances load
            against pickling overhead.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        if workers == "auto":
            workers = os.cpu_count() or 1
        if workers is not None and workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.chunk_size = chunk_size

    @property
    def parallel(self) -> bool:
        return bool(self.workers and self.workers > 1)

    def _pool_payloads(self, spec: TrialSpec, seqs, n_trials: int,
                       engine: Optional[str]):
        """The (spec_dict, seed-entry chunk, engine) pool work units.

        Shared by the list and frame paths so chunk boundaries, the
        opaque-spec refusal, and the batch-resolved engine stay
        identical between them.
        """
        if not spec.serializable:
            raise ConfigurationError(
                "spec contains opaque components (a live instance, factory, "
                "or callable) and cannot be distributed across processes; "
                "run with workers=1 or make the spec declarative")
        spec_dict = spec.to_dict()
        entries = _seed_entries(seqs)
        chunk = self.chunk_size or max(1, -(-n_trials // (self.workers * 4)))
        return [(spec_dict, entries[i:i + chunk], engine)
                for i in range(0, len(entries), chunk)]

    @staticmethod
    def _batch_engine(spec: TrialSpec, n_trials: int) -> Optional[str]:
        """Resolve the engine once for the whole batch.

        Makes the kernel-vs-fast choice a function of the *batch* trial
        count, so serial runs, pools of any size, and any chunk_size
        record the same ``TrialResult.engine``.
        """
        return batch_engine(spec, n_trials)

    def run(self, spec: TrialSpec, n_trials: int,
            seed: SeedLike = None) -> List[TrialResult]:
        """Run ``n_trials`` independent trials of ``spec``, in order."""
        seqs = trial_seed_sequences(seed, n_trials)
        engine = self._batch_engine(spec, n_trials)
        if not self.parallel:
            return run_trials(spec, seqs, engine=engine)
        if spec.record:
            raise ConfigurationError(
                "record=True histories cannot cross the process pool "
                "(result.memory would be silently dropped); run with "
                "workers=1 to keep the recorder")
        payloads = self._pool_payloads(spec, seqs, n_trials, engine)
        results: List[Optional[TrialResult]] = [None] * n_trials
        ctx = _pool_context()
        with ctx.Pool(processes=self.workers) as pool:
            for out in pool.imap_unordered(_run_chunk, payloads):
                for idx, result in out:
                    results[idx] = result
        return results  # type: ignore[return-value]

    def run_frame(self, spec: TrialSpec, n_trials: int,
                  seed: SeedLike = None) -> ResultFrame:
        """Run ``n_trials`` trials of ``spec`` into a columnar frame.

        Bit-identical to :meth:`run` for every ``workers`` value:
        ``runner.run_frame(...).to_trial_results() == runner.run(...)``
        (same seed discipline, same engines, same chunking).  The frame
        path never materializes per-trial result objects on the fast
        engine, and pool workers stream back column arrays chunk by
        chunk instead of pickled dataclass lists, so worker memory stays
        O(chunk).  ``record=True`` specs are refused (a frame cannot
        carry a history recorder).
        """
        if spec.record:
            raise ConfigurationError(
                "record=True histories cannot be stored in a columnar "
                "frame (result.memory would be silently dropped); use "
                "run() / as_frame=False with workers=1")
        seqs = trial_seed_sequences(seed, n_trials)
        engine = self._batch_engine(spec, n_trials)
        if not self.parallel:
            return run_trials_frame(spec, seqs, engine=engine)
        payloads = self._pool_payloads(spec, seqs, n_trials, engine)
        parts: dict = {}
        ctx = _pool_context()
        with ctx.Pool(processes=self.workers) as pool:
            for start, payload in pool.imap_unordered(_run_chunk_frame,
                                                      payloads):
                parts[start] = payload
        frames = [ResultFrame.from_payload(parts[start])
                  for start in sorted(parts)]
        return ResultFrame.concat(frames, spec=spec)

    def run_grid(self, specs: Sequence[TrialSpec], n_trials: int,
                 seed: SeedLike = None) -> List[List[TrialResult]]:
        """Run a sweep: ``n_trials`` per spec, one child seed block each.

        The seed is normalized to a single root generator up front so
        consecutive specs consume *distinct* child-seed blocks (an int
        seed re-used per spec would correlate every grid cell).
        """
        root = make_rng(seed)
        return [self.run(spec, n_trials, seed=root) for spec in specs]


def run_batch(spec: TrialSpec, n_trials: int, seed: SeedLike = None,
              workers: Optional[int] = None, as_frame: bool = False):
    """Run ``n_trials`` trials of ``spec`` (the one-call batch form).

    Results are returned in trial order and are bit-identical for any
    ``workers`` value (see the module docstring for the seed discipline).
    ``as_frame=True`` returns a columnar
    :class:`~repro.sim.frame.ResultFrame` instead of a list — same
    trials, same values (``frame.to_trial_results()`` equals the list),
    but the fast engine writes columns directly and skips the per-trial
    dataclass churn entirely.
    """
    runner = BatchRunner(workers=workers)
    if as_frame:
        return runner.run_frame(spec, n_trials, seed=seed)
    return runner.run(spec, n_trials, seed=seed)
