"""EXP-T14: Theorem 14 — hybrid scheduling decides in <= 12 operations.

Three measurements:

1. **Exhaustive adversarial search** (small n): every legal pre-emption
   choice and every initial quantum debt, via the model checker.  With
   quantum >= 8 and the paper's reading of the model (only the process
   holding the CPU at protocol start may be mid-quantum), the worst case
   over *all* schedules must be <= 12 operations per process.
2. **Quantum sweep**: the same search for quantum 1..10 — the guarantee
   must kick in at 8 (the paper: "the required quantum size is 8").
3. **Randomized schedules** (larger n): random legal pre-emption choices;
   the observed max never exceeds 12.

An extension measurement reports the permissive "every process may start
mid-quantum" reading, under which the 12-operation bound degrades (the
worst case observed is 16) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.core.machine import LeanConsensus
from repro.modelcheck.explorer import CheckOutcome, explore_hybrid
from repro.sim.runner import half_and_half, run_hybrid_trial
from repro.experiments._common import format_table, parse_scale, scale_parser

#: The paper's quantum threshold.
REQUIRED_QUANTUM = 8
#: The paper's per-process operation bound.
OPS_BOUND = 12


@dataclass
class QuantumSweepRow:
    quantum: int
    max_decision_ops: int
    truncated: bool
    safe: bool
    states: int


@dataclass
class HybridResult:
    n_exhaustive: int
    sweep: List[QuantumSweepRow]
    #: Max ops over randomized larger-n schedules, keyed by n.
    randomized_max_ops: Dict[int, int]
    #: Worst case under the permissive debt reading at quantum 8.
    permissive_max_ops: Optional[int]


def _lean_factory(pid: int, bit: int) -> LeanConsensus:
    return LeanConsensus(pid, bit)


def exhaustive_sweep(n: int = 2,
                     quanta: Sequence[int] = tuple(range(1, 11)),
                     budget: int = 40) -> List[QuantumSweepRow]:
    """Exhaustively search all schedules for each quantum value."""
    inputs = half_and_half(n)
    rows = []
    for quantum in quanta:
        outcome: CheckOutcome = explore_hybrid(
            _lean_factory, inputs, quantum=quantum,
            initial_used_options=tuple(range(quantum + 1)),
            max_ops_per_process=budget)
        rows.append(QuantumSweepRow(
            quantum=quantum,
            max_decision_ops=outcome.max_decision_ops,
            truncated=outcome.truncated,
            safe=outcome.safe,
            states=outcome.states_explored))
    return rows


def randomized_max_ops(ns: Sequence[int], trials: int,
                       quantum: int, seed: SeedLike) -> Dict[int, int]:
    """Max per-process decision ops over random legal schedules."""
    root = make_rng(seed)
    out: Dict[int, int] = {}
    for n in ns:
        worst = 0
        for trial_rng in spawn(root, trials):
            chooser_rng = make_rng(trial_rng)

            def chooser(legal: List[int]) -> int:
                return legal[int(chooser_rng.integers(0, len(legal)))]

            debt = int(chooser_rng.integers(0, quantum + 1))
            trial = run_hybrid_trial(
                n, quantum, chooser=chooser,
                initial_used={pid: debt for pid in range(n)},
                seed=trial_rng)
            worst = max(worst, max(d.ops for d in trial.decisions.values()))
        out[n] = worst
    return out


def run(exhaustive_n: int = 2,
        quanta: Sequence[int] = tuple(range(1, 11)),
        randomized_ns: Sequence[int] = (4, 16, 64),
        trials: int = 50,
        include_permissive: bool = True,
        seed: SeedLike = 2000) -> HybridResult:
    """Run the full Theorem-14 experiment."""
    sweep = exhaustive_sweep(n=exhaustive_n, quanta=quanta)
    rand = randomized_max_ops(randomized_ns, trials,
                              quantum=REQUIRED_QUANTUM, seed=seed)
    permissive = None
    if include_permissive:
        outcome = explore_hybrid(
            _lean_factory, half_and_half(exhaustive_n),
            quantum=REQUIRED_QUANTUM,
            initial_used_options=tuple(range(REQUIRED_QUANTUM + 1)),
            debt_policy="per-process", max_ops_per_process=24)
        permissive = outcome.max_decision_ops
    return HybridResult(n_exhaustive=exhaustive_n, sweep=sweep,
                        randomized_max_ops=rand,
                        permissive_max_ops=permissive)


def format_result(result: HybridResult) -> str:
    rows = [(r.quantum, r.max_decision_ops,
             "yes" if r.max_decision_ops <= OPS_BOUND and not r.truncated
             else "no",
             r.truncated, r.safe, r.states) for r in result.sweep]
    out = [format_table(
        ["quantum", "worst ops", "<=12 guaranteed", "truncated",
         "safe", "states"],
        rows,
        title=(f"EXP-T14 — exhaustive adversarial search, "
               f"n={result.n_exhaustive} (paper: quantum >= "
               f"{REQUIRED_QUANTUM} => <= {OPS_BOUND} ops)"))]
    rand_rows = [(n, worst) for n, worst in
                 sorted(result.randomized_max_ops.items())]
    out.append("")
    out.append(format_table(["n", "worst ops (randomized)"], rand_rows))
    if result.permissive_max_ops is not None:
        out.append("")
        out.append(f"permissive per-process-debt reading at quantum 8: "
                   f"worst ops = {result.permissive_max_ops} "
                   f"(> {OPS_BOUND}; see EXPERIMENTS.md)")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 14: hybrid scheduling, <= 12 ops.")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(trials=min(scale.trials, 100), seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
