"""EXP-R10: Theorem 10 / Corollary 11 — the renewal race, in isolation.

The termination proof abstracts lean-consensus into a race of n delayed
renewal processes to a c-round lead.  This experiment validates that
abstraction directly:

* E[R] (the round at which the race ends, c = 2) grows as O(log n) — fitted
  to a·ln(n) + b;
* P[R > k] decays exponentially (Corollary 11);
* the Lemma-5 bound: for independent events with none-probability x, the
  exactly-one probability is >= -x·ln(x) — checked exactly over random
  probability vectors by the test suite and summarized here at the
  Lemma-6 critical time, where the paper guarantees a unique leader with
  probability >= ~0.23.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.renewal import lemma6_critical_time, race_until_lead
from repro.analysis.stats import (
    FitResult,
    fit_exponential_tail,
    fit_log,
    tail_probabilities,
)
from repro.noise.distributions import NoiseDistribution, SumOf, Uniform
from repro.experiments._common import format_table, parse_scale, scale_parser

DEFAULT_RACE_NS = (2, 4, 16, 64, 256)


@dataclass
class RenewalRaceResult:
    ns: Sequence[int]
    trials: int
    c: int
    mean_r: Dict[int, float]
    fit: FitResult
    tail_fit: Optional[FitResult]
    #: Empirical P[unique leader by the Lemma-6 critical time] at max(ns).
    unique_leader_prob: float
    #: The Lemma-6 guarantee (~0.23).
    unique_leader_bound: float


def unique_leader_at_critical_time(dist: NoiseDistribution, n: int,
                                   round_index: int, trials: int,
                                   rng: np.random.Generator) -> float:
    """P[exactly one racer finishes round ``round_index`` by t0].

    Samples finish times, locates the empirical Lemma-6 critical time t0
    (first time the none-finished probability drops to e^-1), and returns
    the empirical probability that exactly one racer finished by t0.
    """
    samples = np.cumsum(dist.sample_array(rng, (trials, n, round_index)),
                        axis=2)[:, :, -1]
    t0 = lemma6_critical_time(samples)
    if t0 is None:
        return 0.0
    finished = samples <= t0
    return float(np.mean(finished.sum(axis=1) == 1))


def run(ns: Sequence[int] = DEFAULT_RACE_NS,
        trials: int = 300,
        c: int = 2,
        noise: Optional[NoiseDistribution] = None,
        seed: SeedLike = 2000) -> RenewalRaceResult:
    """Race n renewal processes to a lead of c; fit E[R] to a·ln(n)+b.

    The per-round increment defaults to the sum of four uniform(0, 2)
    operation delays — the Section-6 abstraction of a lean-consensus round
    under the Figure-1 uniform distribution.
    """
    noise = noise if noise is not None else SumOf(Uniform(0.0, 2.0), 4)
    root = make_rng(seed)
    mean_r: Dict[int, float] = {}
    tail_fit = None
    for n in ns:
        rounds = race_until_lead(noise, n, c, trials, make_rng(spawn(root, 1)[0]))
        mean_r[n] = float(rounds.mean())
        if n == max(ns):
            ks = list(range(1, int(rounds.max()) + 1))
            probs = tail_probabilities(rounds, ks)
            if np.count_nonzero(probs > 0) >= 2:
                tail_fit = fit_exponential_tail(ks, probs)
    fit_ns = [n for n in ns if n >= 2]
    fit = fit_log(fit_ns, [mean_r[n] for n in fit_ns])
    leader_rng = spawn(root, 1)[0]
    leader_prob = unique_leader_at_critical_time(
        noise, max(ns), round_index=4, trials=max(trials, 400),
        rng=leader_rng)
    bound = (1 - math.exp(-1)) * math.exp(-1)  # Lemma 6's 0.23...
    return RenewalRaceResult(ns=tuple(ns), trials=trials, c=c,
                             mean_r=mean_r, fit=fit, tail_fit=tail_fit,
                             unique_leader_prob=leader_prob,
                             unique_leader_bound=bound)


def format_result(result: RenewalRaceResult) -> str:
    rows = [(n, result.mean_r[n]) for n in result.ns]
    out = [format_table(
        ["n", "E[R] (lead of %d)" % result.c], rows,
        title=f"EXP-R10 — renewal race ({result.trials} trials/point)")]
    out.append(f"fit: {result.fit}")
    if result.tail_fit is not None:
        out.append(f"tail fit at n={max(result.ns)}: {result.tail_fit} "
                   "(negative slope = exponential tail)")
    out.append(f"P[unique leader by t0] = {result.unique_leader_prob:.3f} "
               f"(Lemma 6 guarantees >= {result.unique_leader_bound:.3f})")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 10 / Corollary 11: the renewal race.")
    scale, _ = parse_scale(parser, argv)
    ns = DEFAULT_RACE_NS if scale.ns == (1, 10, 100, 1000, 10000) else scale.ns
    print(format_result(run(ns=ns, trials=min(scale.trials, 500),
                            seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
