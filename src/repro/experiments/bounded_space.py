"""EXP-T15: Theorem 15 — the bounded-space combined protocol.

Claims reproduced:

* with r_max = O(log² n) the backup protocol essentially never runs, so the
  combined protocol's expected work matches plain lean-consensus up to a
  small constant;
* the racing arrays never grow past r_max locations (checked by running the
  memory with a hard capacity);
* agreement and validity hold even when the cutoff *is* hit — verified by
  shrinking r_max until the backup runs frequently and checking every
  execution (including mixed decisions across the main/backup boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.core.bounded import suggested_round_cap
from repro.noise.distributions import Exponential, NoiseDistribution
from repro.sim.runner import run_noisy_trial
from repro.experiments._common import (
    DEFAULT_TRIALS,
    format_table,
    parse_scale,
    scale_parser,
)

DEFAULT_BS_NS = (4, 16, 64, 256)


@dataclass
class BoundedRow:
    n: int
    r_max: int
    trials: int
    backup_runs: int          # processes that entered the backup
    backup_trials: int        # trials where any process entered the backup
    mean_total_ops: float
    mean_total_ops_plain: float
    max_main_round: int
    agreement_rate: float


@dataclass
class BoundedResult:
    rows: List[BoundedRow]
    #: Rows from the small-r_max stress sweep (backup forced to run).
    stress_rows: List[BoundedRow]


def _measure(n: int, r_max: int, trials: int, noise: NoiseDistribution,
             root, compare_plain: bool) -> BoundedRow:
    backup_runs = 0
    backup_trials = 0
    total_ops = []
    plain_ops = []
    max_main_round = 0
    agreed = 0
    for trial_rng in spawn(root, trials):
        sub = make_rng(trial_rng)
        trial = run_noisy_trial(n, noise, seed=sub, protocol="bounded",
                                round_cap=r_max, engine="event")
        backup_runs += trial.used_backup
        backup_trials += 1 if trial.used_backup else 0
        total_ops.append(trial.total_ops)
        agreed += 1 if trial.agreed else 0
        for machine in trial.machines:  # type: ignore[attr-defined]
            max_main_round = max(max_main_round,
                                 machine.max_round_reached())
        if compare_plain:
            plain = run_noisy_trial(n, noise, seed=sub, protocol="lean",
                                    engine="event")
            plain_ops.append(plain.total_ops)
    return BoundedRow(
        n=n, r_max=r_max, trials=trials,
        backup_runs=backup_runs, backup_trials=backup_trials,
        mean_total_ops=float(np.mean(total_ops)),
        mean_total_ops_plain=float(np.mean(plain_ops)) if plain_ops else 0.0,
        max_main_round=max_main_round,
        agreement_rate=agreed / trials)


def run(ns: Sequence[int] = DEFAULT_BS_NS,
        trials: int = DEFAULT_TRIALS,
        noise: Optional[NoiseDistribution] = None,
        stress_r_max: int = 3,
        stress_trials: Optional[int] = None,
        seed: SeedLike = 2000) -> BoundedResult:
    """Run the Theorem-15 experiment.

    The main sweep uses the suggested r_max = Θ(log² n); the stress sweep
    pins r_max to a tiny value so the backup path actually executes and its
    agreement-across-the-boundary behaviour is exercised.
    """
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    rows = [
        _measure(n, suggested_round_cap(n), trials, noise, root,
                 compare_plain=True)
        for n in ns
    ]
    stress = [
        _measure(n, stress_r_max, stress_trials or trials, noise, root,
                 compare_plain=False)
        for n in ns
    ]
    return BoundedResult(rows=rows, stress_rows=stress)


def format_result(result: BoundedResult) -> str:
    rows = [(r.n, r.r_max, r.backup_trials, r.trials,
             r.mean_total_ops, r.mean_total_ops_plain,
             r.max_main_round, r.agreement_rate)
            for r in result.rows]
    out = [format_table(
        ["n", "r_max", "backup trials", "trials", "ops (bounded)",
         "ops (plain)", "max main round", "agree"],
        rows, title="EXP-T15 — Theorem 15, r_max = Θ(log² n)")]
    rows = [(r.n, r.r_max, r.backup_runs, r.backup_trials, r.trials,
             r.agreement_rate) for r in result.stress_rows]
    out.append("")
    out.append(format_table(
        ["n", "r_max", "backup procs", "backup trials", "trials", "agree"],
        rows, title="stress sweep (tiny r_max forces the backup)"))
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 15: bounded-space combined protocol.")
    scale, _ = parse_scale(parser, argv)
    ns = DEFAULT_BS_NS if scale.ns == (1, 10, 100, 1000, 10000) else scale.ns
    print(format_result(run(ns=ns, trials=min(scale.trials, 300),
                            seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
