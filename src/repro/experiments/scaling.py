"""EXP-T12: Theorem 12 — O(log n) termination with an exponential tail.

Two measurements:

1. **Growth.** Mean round of *last* termination (the theorem bounds every
   process, not just the winner) versus n, fitted to a·ln(n) + b.  A good
   fit (R² close to 1) with small `a` reproduces the Θ(log n) claim and the
   paper's observation that the constants are small.
2. **Tail.** For a fixed n, the empirical P[R > k] versus k, fitted to an
   exponential; Corollary 11 predicts log-linear decay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng
from repro.analysis.aggregate import Mean, TailProbabilities, fit_log_over_cells
from repro.analysis.stats import FitResult, fit_exponential_tail
from repro.api import (
    BatchRunner,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    noise_to_spec,
    run_sweep,
)
from repro.noise.distributions import Exponential, NoiseDistribution
from repro.experiments._common import (
    DEFAULT_NS,
    DEFAULT_TRIALS,
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
    sweep_value_seed,
)


@dataclass
class ScalingResult:
    """Growth measurement plus its logarithmic fit."""

    ns: Sequence[int]
    trials: int
    mean_first: Dict[int, float]
    mean_last: Dict[int, float]
    fit_first: FitResult
    fit_last: FitResult
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


@dataclass
class TailResult:
    """Empirical tail P[R > k] at one n, with its exponential fit."""

    n: int
    trials: int
    ks: Sequence[int]
    probs: Sequence[float]
    fit: FitResult
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


def run(ns: Sequence[int] = DEFAULT_NS,
        trials: int = DEFAULT_TRIALS,
        noise: Optional[NoiseDistribution] = None,
        seed: SeedLike = 2000,
        engine: str = "auto",
        backend: str = "numpy",
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None) -> ScalingResult:
    """Measure termination-round growth and fit the Θ(log n) model.

    The sweep is one :class:`~repro.api.SweepSpec` over n executed
    through :func:`~repro.api.run_sweep` (``workers`` parallelizes it
    with identical output; ``engine="fast"`` forces the vectorized
    replay at every n; ``cache_dir`` resumes interrupted runs).  Skips
    n = 1 for the fit (ln 1 = 0 gives the intercept no leverage and the
    point is deterministic anyway) but still reports it.
    """
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    sweep = SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(noise=noise_to_spec(noise)),
                       engine=engine, backend=backend),
        axes=(SweepAxis("n", tuple(ns)),),
        trials=trials)
    mean_first: Dict[int, float] = {}
    mean_last: Dict[int, float] = {}
    first_of, last_of = Mean("first_decision_round"), Mean("last_decision_round")
    for cell, frame in run_sweep(sweep, seed=sweep_value_seed(root),
                                 workers=workers, cache_dir=cache_dir):
        mean_first[cell.coord("n")] = first_of(frame)
        mean_last[cell.coord("n")] = last_of(frame)
    fit_first = fit_log_over_cells(ns, [mean_first[n] for n in ns])
    fit_last = fit_log_over_cells(ns, [mean_last[n] for n in ns])
    return ScalingResult(ns=tuple(ns), trials=trials,
                         mean_first=mean_first, mean_last=mean_last,
                         fit_first=fit_first, fit_last=fit_last,
                         seed=seed_entropy(root))


def run_tail(n: int = 256, trials: int = 2000,
             noise: Optional[NoiseDistribution] = None,
             ks: Optional[Sequence[int]] = None,
             seed: SeedLike = 2000,
             engine: str = "auto",
             backend: str = "numpy",
             workers: Optional[int] = None) -> TailResult:
    """Measure P[termination round > k] and fit the exponential tail."""
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    spec = TrialSpec(n=n, model=NoisyModelSpec(noise=noise_to_spec(noise)),
                     engine=engine, backend=backend)
    frame = BatchRunner(workers=workers).run_frame(spec, trials, seed=root)
    if ks is None:
        hi = int(np.nanmax(frame.column("last_decision_round")))
        ks = list(range(2, hi + 1))
    probs = TailProbabilities("last_decision_round", tuple(ks))(frame)
    fit = fit_exponential_tail(ks, probs)
    return TailResult(n=n, trials=trials, ks=tuple(ks),
                      probs=tuple(float(p) for p in probs), fit=fit,
                      seed=seed_entropy(root))


def format_result(result: ScalingResult, tail: Optional[TailResult] = None) -> str:
    rows = [(n, result.mean_first[n], result.mean_last[n])
            for n in result.ns]
    out = [format_table(["n", "mean first round", "mean last round"], rows,
                        title="EXP-T12 — Theorem 12 growth "
                              f"({result.trials} trials/point)")]
    out.append(f"fit(first): {result.fit_first}")
    out.append(f"fit(last):  {result.fit_last}")
    if tail is not None:
        rows = list(zip(tail.ks, tail.probs))
        out.append("")
        out.append(format_table(["k", "P[R > k]"], rows,
                                title=f"tail at n={tail.n}"))
        out.append(f"fit(tail):  {tail.fit} (negative slope = exp. decay)")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 12: Θ(log n) termination + tail.")
    parser.add_argument("--tail-n", type=int, default=256)
    scale, args = parse_scale(parser, argv)
    result = run(ns=scale.ns, trials=scale.trials, seed=scale.seed,
                 engine=scale.engine or "auto",
                 backend=scale.backend or "numpy", workers=scale.workers,
                 cache_dir=scale.cache_dir)
    tail = run_tail(n=args.tail_n, trials=max(scale.trials, 500),
                    seed=scale.seed, engine=scale.engine or "auto",
                    backend=scale.backend or "numpy",
                    workers=scale.workers)
    print(format_result(result, tail))


if __name__ == "__main__":  # pragma: no cover
    main()
