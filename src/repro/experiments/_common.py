"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

#: The paper's Figure-1 grid (log-spaced 1 .. 100,000) and trial count.
PAPER_NS = (1, 10, 100, 1_000, 10_000, 100_000)
PAPER_TRIALS = 10_000

#: Default (minutes-scale, laptop-friendly) grid used by the benchmarks.
DEFAULT_NS = (1, 10, 100, 1_000, 10_000)
DEFAULT_TRIALS = 200

#: Smoke-test scale used by the unit tests.
SMOKE_NS = (1, 8, 32)
SMOKE_TRIALS = 12


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table (the experiment printers' common format)."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def seed_entropy(root: np.random.Generator):
    """The root generator's ``SeedSequence.entropy`` — the reproducible
    identity an experiment result should record.

    For an integer seed this is the seed itself
    (``SeedSequence(2000).entropy == 2000``); for a generator or
    OS-entropy root it is the actual entropy drawn, so results stay
    attributable instead of the old ``-1`` placeholder.
    """
    seq = getattr(root.bit_generator, "seed_seq", None)
    return getattr(seq, "entropy", None)


def sweep_value_seed(seed):
    """Normalize a seed-like value onto the analytic sweep-seed lane.

    A live ``Generator`` is replaced by its ``SeedSequence``:
    :func:`~repro.api.run_sweep` treats a ``SeedSequence`` as a pure
    value (same child identities, counter not advanced), so harnesses
    that only need the root for the sweep itself get bit-identical
    results on the cacheable/resumable analytic lane instead of the
    mutating legacy spawn lane — without
    :class:`~repro.api.LegacySeedLaneWarning`, and without changing
    what an int or ``None`` seed ultimately draws.  Only correct when
    nothing else spawns from the generator afterwards (the harness
    below each call site owns its root).
    """
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    return seed


@dataclass
class CliScale:
    """Parsed command-line scale options shared by experiment mains."""

    ns: Sequence[int]
    trials: int
    seed: int
    workers: Optional[int] = None
    engine: Optional[str] = None
    backend: Optional[str] = None
    cache_dir: Optional[str] = None


def scale_parser(description: str) -> argparse.ArgumentParser:
    """Argument parser with the standard --ns/--trials/--seed/--paper flags."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--ns", type=int, nargs="+", default=None,
                        help="process counts to sweep")
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per configuration")
    parser.add_argument("--seed", type=int, default=2000,
                        help="root seed (default: 2000, the paper's year)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for batched sweeps "
                             "(default: serial; results are identical)")
    parser.add_argument("--engine",
                        choices=("auto", "event", "fast", "kernel"),
                        default=None,
                        help="simulation engine for the sweeps "
                             "(default: the experiment's own choice; "
                             "'fast' forces the vectorized replay at any "
                             "n, 'kernel' the trial-parallel lockstep "
                             "replay — bit-identical to 'fast', fastest "
                             "at high trial counts; both compose with "
                             "--workers and make the --paper scale "
                             "affordable)")
    parser.add_argument("--backend",
                        choices=("numpy", "numba", "cupy"),
                        default=None,
                        help="array backend for the lockstep kernel "
                             "(default: numpy; numba/cupy apply when the "
                             "kernel engine runs and degrade to numpy "
                             "with the reason on engine_reason if the "
                             "import or device is unavailable — unless "
                             "--engine kernel pins them, which errors "
                             "instead)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="opt-in on-disk sweep cache: finished grid "
                             "cells are persisted (keyed by spec + seed + "
                             "code version) so interrupted --paper runs "
                             "resume instead of recomputing")
    parser.add_argument("--paper", action="store_true",
                        help="use the paper's full scale "
                             "(n up to 100000, 10000 trials; slow)")
    return parser


def parse_scale(parser: argparse.ArgumentParser, argv=None):
    """Parse args; returns (CliScale, full namespace) for extra options."""
    args = parser.parse_args(argv)
    if args.paper:
        ns = args.ns or PAPER_NS
        trials = args.trials or PAPER_TRIALS
    else:
        ns = args.ns or DEFAULT_NS
        trials = args.trials or DEFAULT_TRIALS
    return CliScale(ns=tuple(ns), trials=trials, seed=args.seed,
                    workers=getattr(args, "workers", None),
                    engine=getattr(args, "engine", None),
                    backend=getattr(args, "backend", None),
                    cache_dir=getattr(args, "cache_dir", None)), args
