"""EXP-T13: Theorem 13 — the Ω(log n) lower-bound construction.

The paper's construction: every operation takes 1 or 2 time units with
equal probability (``TwoPoint(1, 2)``), no adversary delays, half the
inputs 0 and half 1.  Any single process runs its first log2(n) operations
"fast" (all 1s) with probability 1/n, so with constant probability
(→ (1 - e^{-1/2})² ≈ 0.155) each team has a fast runner, and the two fast
runners stay tied for Ω(log n) rounds.

We measure (a) the growth of the mean termination round under this
distribution, which must scale like log n, and (b) the empirical
probability that both teams contain a process whose first k = lg n
operations all took time 1 — the event driving the bound — against the
analytic value (1 - (1 - 1/n)^{n/2})².
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.aggregate import Mean, fit_log_over_cells
from repro.analysis.stats import FitResult
from repro.api import (
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    noise_to_spec,
    run_sweep,
)
from repro.noise.distributions import TwoPoint
from repro.experiments._common import (
    DEFAULT_TRIALS,
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
)

#: The Theorem-13 noise distribution.
LOWER_BOUND_NOISE = TwoPoint(1.0, 2.0)

#: Default n grid (powers of two keep lg n integral).
DEFAULT_LB_NS = (4, 16, 64, 256, 1024)


@dataclass
class LowerBoundResult:
    ns: Sequence[int]
    trials: int
    mean_first: Dict[int, float]
    mean_last: Dict[int, float]
    fit_first: FitResult
    #: Empirical P[each team has an all-fast runner over lg n ops].
    fast_pair_prob: Dict[int, float]
    #: The paper's analytic value (1 - (1 - 1/n)^{n/2})^2.
    fast_pair_analytic: Dict[int, float]
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


def analytic_fast_pair(n: int) -> float:
    """(1 - (1 - 1/n)^(n/2))² — the Theorem-13 two-fast-runners bound."""
    return (1.0 - (1.0 - 1.0 / n) ** (n / 2.0)) ** 2


def empirical_fast_pair(n: int, trials: int,
                        rng: np.random.Generator) -> float:
    """Directly sample the two-fast-runners event (no protocol needed).

    Each of n processes independently runs its first lg n operations in one
    time unit each with probability 2^(-lg n) = 1/n; teams are the paper's
    half-and-half split.
    """
    k = max(1, int(math.log2(n)))
    p_fast = 0.5 ** k
    half = n // 2
    hits = 0
    for _ in range(trials):
        fast = rng.random(n) < p_fast
        if fast[:half].any() and fast[half:].any():
            hits += 1
    return hits / trials


def run(ns: Sequence[int] = DEFAULT_LB_NS,
        trials: int = DEFAULT_TRIALS,
        seed: SeedLike = 2000,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None) -> LowerBoundResult:
    """Measure termination growth under the lower-bound distribution.

    The sweep is a :class:`~repro.api.SweepSpec` over n executed through
    :func:`~repro.api.run_sweep`; the direct fast-pair sampling rides
    alongside on its own pre-spawned stream, exactly as the historical
    interleaved loop consumed it.
    """
    root = make_rng(seed)
    entropy = seed_entropy(root)
    event_rng = make_rng(spawn(root, 1)[0])
    sweep = SweepSpec(
        base=TrialSpec(n=1, model=NoisyModelSpec(
            noise=noise_to_spec(LOWER_BOUND_NOISE))),
        axes=(SweepAxis("n", tuple(ns)),),
        trials=trials)
    mean_first: Dict[int, float] = {}
    mean_last: Dict[int, float] = {}
    pair_emp: Dict[int, float] = {}
    pair_ana: Dict[int, float] = {}
    first_of, last_of = Mean("first_decision_round"), Mean("last_decision_round")
    # The root is deliberately threaded: event_rng was spawned from it
    # above, so the sweep must keep consuming the same root's counter
    # (the legacy lane) to reproduce the historical interleaving.
    for cell, frame in run_sweep(sweep, seed=root, workers=workers,
                                 cache_dir=cache_dir, legacy_seed_ok=True):
        n = cell.coord("n")
        mean_first[n] = first_of(frame)
        mean_last[n] = last_of(frame)
        pair_emp[n] = empirical_fast_pair(n, max(trials, 400), event_rng)
        pair_ana[n] = analytic_fast_pair(n)
    fit = fit_log_over_cells(ns, [mean_first[n] for n in ns])
    return LowerBoundResult(ns=tuple(ns), trials=trials,
                            mean_first=mean_first, mean_last=mean_last,
                            fit_first=fit,
                            fast_pair_prob=pair_emp,
                            fast_pair_analytic=pair_ana,
                            seed=entropy)


def format_result(result: LowerBoundResult) -> str:
    rows = [(n, result.mean_first[n], result.mean_last[n],
             result.fast_pair_prob[n], result.fast_pair_analytic[n])
            for n in result.ns]
    out = [format_table(
        ["n", "mean first", "mean last", "P[fast pair] emp", "analytic"],
        rows,
        title=f"EXP-T13 — Theorem 13 lower bound ({result.trials} trials)")]
    out.append(f"fit(first): {result.fit_first}  "
               "(positive slope = Ω(log n) growth)")
    out.append(f"analytic limit of P[fast pair]: "
               f"{(1 - math.exp(-0.5)) ** 2:.4f}")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 13: Ω(log n) lower bound.")
    scale, _ = parse_scale(parser, argv)
    ns = scale.ns if scale.ns != (1, 10, 100, 1000, 10000) else DEFAULT_LB_NS
    print(format_result(run(ns=ns, trials=scale.trials, seed=scale.seed,
                            workers=scale.workers,
                            cache_dir=scale.cache_dir)))


if __name__ == "__main__":  # pragma: no cover
    main()
