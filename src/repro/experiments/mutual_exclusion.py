"""EXP-MUTEX: timing-based mutual exclusion under noisy timing (§10).

The paper: timing-based algorithms "should continue to work in the noisy
scheduling model, perhaps with some constraint on the noise distribution
to exclude random delays with unbounded expectations."  We measure
Fischer's mutex, whose safety rests on a pause d exceeding the maximum
operation latency:

* bounded noise (uniform(0, 2)): violations vanish exactly once d clears
  the bound — the timing assumption holds and the algorithm "continues to
  work";
* unbounded noise (exponential): the violation rate decays roughly like
  P[X > d] = e^(-d) but never reaches zero — the constraint the paper
  anticipated, quantified.

Throughput is the other side of the trade: larger d means safer but
slower entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro._rng import SeedLike, make_rng, spawn
from repro.mutex.fischer import simulate_fischer
from repro.noise.distributions import Exponential, NoiseDistribution, Uniform
from repro.experiments._common import format_table, parse_scale, scale_parser


@dataclass
class MutexRow:
    noise: str
    pause: float
    entries: int
    violations: int
    violation_rate: float
    mean_wait: float


@dataclass
class MutexResult:
    n: int
    rows: List[MutexRow]


def run(n: int = 4,
        pauses: Sequence[float] = (0.25, 1.0, 2.5, 5.0),
        entries_per_cell: int = 400,
        seed: SeedLike = 2000) -> MutexResult:
    """Sweep the pause d for bounded and unbounded noise."""
    noises: List[NoiseDistribution] = [Uniform(0.0, 2.0), Exponential(1.0)]
    root = make_rng(seed)
    rows = []
    for noise in noises:
        for pause in pauses:
            (rng,) = spawn(root, 1)
            result = simulate_fischer(n, noise, pause, rng,
                                      target_entries=entries_per_cell)
            rows.append(MutexRow(
                noise=noise.name, pause=pause,
                entries=result.entries,
                violations=result.violations,
                violation_rate=result.violations / max(result.entries, 1),
                mean_wait=result.mean_wait))
    return MutexResult(n=n, rows=rows)


def format_result(result: MutexResult) -> str:
    return format_table(
        ["noise", "pause d", "entries", "violations", "rate", "mean wait"],
        [(r.noise, r.pause, r.entries, r.violations, r.violation_rate,
          r.mean_wait) for r in result.rows],
        title=(f"EXP-MUTEX — Fischer's timing-based mutex, n={result.n} "
               "(bounded noise: safe once d clears the bound; "
               "unbounded: never fully safe)"))


def main(argv=None) -> None:
    parser = scale_parser("Section 10: timing-based mutual exclusion.")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(entries_per_cell=min(scale.trials * 4, 1000),
                            seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
