"""EXP-MP: lean-consensus over message passing (Section 10 extension).

"It would be interesting to see whether a noisy scheduling assumption can
be used to solve consensus quickly in an asynchronous message-passing
model."  We compose lean-consensus with the ABD atomic-register emulation
over a crash-prone server majority: message-latency noise plays the role
of scheduling noise.

Measured shapes:

* the decision round still grows logarithmically in the number of clients
  (the register emulation preserves the interleaving statistics up to
  per-operation latency inflation);
* a crashed server *minority* changes nothing qualitatively (quorums
  absorb it);
* message cost per decision scales as Theta(n_servers) per register
  operation — the emulation's price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.stats import FitResult, fit_log
from repro.netsim.runner import run_mp_trial
from repro.noise.distributions import NoiseDistribution, ShiftedExponential
from repro.experiments._common import format_table, parse_scale, scale_parser

DEFAULT_MP_NS = (2, 4, 8, 16)


@dataclass
class MpRow:
    n: int
    trials: int
    mean_last_round: float
    mean_messages: float
    mean_sim_time: float
    agreement_rate: float


@dataclass
class MpResult:
    rows: List[MpRow]
    crash_rows: List[MpRow]
    fit: Optional[FitResult]
    n_servers: int
    crash_servers: int


def _sweep(ns: Sequence[int], trials: int, latency: NoiseDistribution,
           n_servers: int, crash_servers: int, seed) -> List[MpRow]:
    root = make_rng(seed)
    rows = []
    for n in ns:
        rounds, msgs, times, agreed = [], [], [], 0
        for trial_rng in spawn(root, trials):
            trial = run_mp_trial(n, latency, seed=trial_rng,
                                 n_servers=n_servers,
                                 crash_servers=crash_servers)
            last = max(d.round for d in trial.decisions.values())
            rounds.append(last)
            msgs.append(trial.delivered_messages)
            times.append(trial.sim_time)
            agreed += 1 if trial.agreed else 0
        rows.append(MpRow(n=n, trials=trials,
                          mean_last_round=float(np.mean(rounds)),
                          mean_messages=float(np.mean(msgs)),
                          mean_sim_time=float(np.mean(times)),
                          agreement_rate=agreed / trials))
    return rows


def run(ns: Sequence[int] = DEFAULT_MP_NS,
        trials: int = 30,
        latency: Optional[NoiseDistribution] = None,
        n_servers: int = 5,
        crash_servers: int = 2,
        seed: SeedLike = 2000) -> MpResult:
    """Measure lean-consensus over ABD with and without server crashes."""
    latency = latency if latency is not None else ShiftedExponential(0.5, 0.5)
    root = make_rng(seed)
    seeds = spawn(root, 2)
    rows = _sweep(ns, trials, latency, n_servers, 0, seeds[0])
    crash_rows = _sweep(ns, trials, latency, n_servers, crash_servers,
                        seeds[1])
    fit = None
    fit_ns = [r.n for r in rows if r.n >= 2]
    if len(fit_ns) >= 2:
        fit = fit_log(fit_ns, [r.mean_last_round for r in rows
                               if r.n >= 2])
    return MpResult(rows=rows, crash_rows=crash_rows, fit=fit,
                    n_servers=n_servers, crash_servers=crash_servers)


def format_result(result: MpResult) -> str:
    def table(rows, title):
        return format_table(
            ["n clients", "mean last round", "mean msgs", "sim time",
             "agree"],
            [(r.n, r.mean_last_round, r.mean_messages, r.mean_sim_time,
              r.agreement_rate) for r in rows],
            title=title)

    out = [table(result.rows,
                 f"EXP-MP — lean-consensus over ABD "
                 f"({result.n_servers} servers, 0 crashed)")]
    out.append("")
    out.append(table(result.crash_rows,
                     f"with {result.crash_servers} of "
                     f"{result.n_servers} servers crashed"))
    if result.fit is not None:
        out.append(f"fit (no crashes): {result.fit}")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Section 10: consensus over message passing.")
    scale, _ = parse_scale(parser, argv)
    ns = DEFAULT_MP_NS if scale.ns == (1, 10, 100, 1000, 10000) else scale.ns
    print(format_result(run(ns=ns, trials=min(scale.trials, 60),
                            seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
