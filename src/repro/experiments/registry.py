"""The experiment registry: one declarative record per paper artifact.

``python -m repro`` consumes this registry instead of a hand-maintained
module dict, and ``python -m repro --list`` prints it in machine-readable
form.  Each entry names the experiment, the paper artifact it reproduces,
and the module that implements it; modules are imported lazily so listing
experiments stays cheap.

Registering a new experiment is one :func:`register` call (or one entry in
the table below); the CLI, ``all`` dispatch, and ``--list`` output pick it
up automatically.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentInfo:
    """One registered experiment harness.

    Attributes:
        name: the CLI name (``python -m repro <name>``).
        module_name: dotted path of the implementing module; it must expose
            ``main(argv)`` and (by convention) ``run(...)`` returning the
            documented result dataclasses.
        artifact: the paper artifact the experiment reproduces.
        summary: one-line human description.
        batched: True when the harness dispatches its sweeps through the
            :class:`repro.api.BatchRunner` (and therefore honors
            ``--workers``).
    """

    name: str
    module_name: str
    artifact: str
    summary: str
    batched: bool = False

    def load(self) -> ModuleType:
        return importlib.import_module(self.module_name)

    def main(self, argv: Optional[List[str]] = None) -> None:
        self.load().main(argv)

    def describe(self) -> Dict[str, object]:
        """A JSON-compatible record for ``python -m repro --list``."""
        return {
            "name": self.name,
            "module": self.module_name,
            "artifact": self.artifact,
            "summary": self.summary,
            "batched": self.batched,
        }


_REGISTRY: Dict[str, ExperimentInfo] = {}


def register(name: str, module_name: str, artifact: str, summary: str,
             batched: bool = False) -> ExperimentInfo:
    """Add an experiment to the registry (idempotent per name)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"experiment {name!r} already registered")
    info = ExperimentInfo(name=name, module_name=module_name,
                          artifact=artifact, summary=summary,
                          batched=batched)
    _REGISTRY[name] = info
    return info


def get(name: str) -> Optional[ExperimentInfo]:
    return _REGISTRY.get(name)


def names() -> List[str]:
    return sorted(_REGISTRY)


def infos() -> List[ExperimentInfo]:
    return [_REGISTRY[name] for name in names()]


def describe_all() -> List[Dict[str, object]]:
    """The full registry as JSON-compatible records (for ``--list``)."""
    return [info.describe() for info in infos()]


# ---------------------------------------------------------------------------
# The built-in experiments (one per paper artifact; see experiments/__init__)
# ---------------------------------------------------------------------------

register("figure1", "repro.experiments.figure1", "Figure 1",
         "Mean round of first termination vs n for the six "
         "interarrival distributions", batched=True)
register("scaling", "repro.experiments.scaling", "Theorem 12",
         "Θ(log n) termination growth and the exponential tail",
         batched=True)
register("lower-bound", "repro.experiments.lower_bound", "Theorem 13",
         "Ω(log n) lower-bound construction under two-point noise",
         batched=True)
register("hybrid", "repro.experiments.hybrid", "Theorem 14",
         "Hybrid quantum/priority uniprocessor scheduling, <= 12 ops")
register("bounded-space", "repro.experiments.bounded_space", "Theorem 15",
         "Bounded-space combined protocol with backup fallback")
register("unfairness", "repro.experiments.unfairness", "Theorem 1",
         "Unbounded unfairness under the heavy-tail distribution")
register("renewal-race", "repro.experiments.renewal_race",
         "Theorem 10 / Corollary 11",
         "Renewal-race abstraction of the round structure")
register("failures", "repro.experiments.failures",
         "Sections 3.1.2 and 10",
         "Random halting sweep and the adaptive kill-the-leader adversary",
         batched=True)
register("ablations", "repro.experiments.ablations", "Sections 4 and 6",
         "Protocol-variant, noise-spread, and delay-bound ablations",
         batched=True)
register("message-passing", "repro.experiments.message_passing",
         "Section 10",
         "Message-passing emulation through ABD registers")
register("extensions", "repro.experiments.extensions", "Section 10",
         "Statistical adversary, memory contention, and id consensus",
         batched=True)
register("mutual-exclusion", "repro.experiments.mutual_exclusion",
         "Section 10",
         "Timing-based mutual exclusion (Fischer) under noise")
