"""EXP-T1: Theorem 1 — noisy scheduling does not imply fairness.

The construction: noise taking value 2^(k²) with probability 2^(-k).  The
expected number of operations a rival completes between two consecutive
operations of a process is *infinite*.

An infinite expectation cannot be measured directly; the standard empirical
signature is divergence under truncation.  We cap the distribution at
k <= K and measure, for growing K, the mean number of operations process B
completes between consecutive operations of process A (pure renewal
simulation — the quantity is algorithm-independent).  The truncated means
grow without bound, roughly linearly in K: conditioned on A drawing the
value 2^(K²) (probability ~2^-K), B packs Omega(2^K) operations into the
gap, so each tail level contributes a constant (~1/2) to the expectation —
exactly the divergent sum in the paper's proof.  A well-behaved
distribution's means stay flat at ~1 by contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.noise.distributions import Exponential, HeavyTail, NoiseDistribution
from repro.experiments._common import format_table, parse_scale, scale_parser

DEFAULT_CAPS = (2, 3, 4, 5)


def mean_interleaved_ops(dist: NoiseDistribution, trials: int,
                         rng: np.random.Generator,
                         gaps_per_trial: int = 16) -> float:
    """Mean #ops B completes strictly between consecutive ops of A.

    Simulates two independent renewal processes with increments from
    ``dist`` and averages the count of B-arrivals in each of A's first
    ``gaps_per_trial`` inter-operation gaps.
    """
    counts: List[int] = []
    for _ in range(trials):
        a_times = np.cumsum(dist.sample_array(rng, gaps_per_trial + 1))
        horizon = a_times[-1]
        # Draw B arrivals until the horizon is passed.
        b_times: List[float] = []
        t = 0.0
        block = max(16, gaps_per_trial * 2)
        while t <= horizon:
            incs = dist.sample_array(rng, block)
            for inc in incs:
                t += float(inc)
                if t > horizon:
                    break
                b_times.append(t)
        b_arr = np.asarray(b_times)
        for j in range(gaps_per_trial):
            lo, hi = a_times[j], a_times[j + 1]
            counts.append(int(((b_arr > lo) & (b_arr < hi)).sum()))
    return float(np.mean(counts))


@dataclass
class UnfairnessResult:
    caps: Sequence[int]
    trials: int
    #: Truncation level K -> mean interleaved ops under the heavy tail.
    heavy: Dict[int, float]
    #: Same measurement under exponential(1) noise (flat control).
    control: float


def run(caps: Sequence[int] = DEFAULT_CAPS, trials: int = 200,
        seed: SeedLike = 2000) -> UnfairnessResult:
    root = make_rng(seed)
    rngs = spawn(root, len(caps) + 1)
    heavy = {
        cap: mean_interleaved_ops(HeavyTail(k_cap=cap), trials, rngs[i])
        for i, cap in enumerate(caps)
    }
    control = mean_interleaved_ops(Exponential(1.0), trials, rngs[-1])
    return UnfairnessResult(caps=tuple(caps), trials=trials,
                            heavy=heavy, control=control)


def format_result(result: UnfairnessResult) -> str:
    rows = [(k, result.heavy[k]) for k in result.caps]
    out = [format_table(
        ["truncation K", "mean interleaved ops"],
        rows,
        title=("EXP-T1 — Theorem 1 unfairness: heavy tail 2^(k^2) w.p. "
               f"2^-k, truncated at K ({result.trials} trials)"))]
    out.append(f"control (exponential(1)): {result.control:.3f} "
               "(flat, by contrast)")
    out.append("divergence with K is the empirical signature of the "
               "infinite expectation")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Theorem 1: unfairness of noisy scheduling.")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(trials=min(scale.trials, 400), seed=scale.seed)))


if __name__ == "__main__":  # pragma: no cover
    main()
