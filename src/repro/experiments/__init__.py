"""Experiment harnesses: one module per paper artifact.

Every module follows the same shape:

* a ``run(...) -> *Result`` function (pure library API, seeded, returns
  dataclasses);
* a ``format_table(result) -> str`` printer producing the paper-shaped
  series;
* a ``main(argv)`` entry point, so each experiment is runnable as
  ``python -m repro.experiments.<name>``.

The CLI-facing index lives in :mod:`repro.experiments.registry`; the
table below maps paper artifacts to modules (see DESIGN.md section 3):

========  ==========================================  =======================
Exp id    Paper artifact                              Module
========  ==========================================  =======================
EXP-F1    Figure 1                                    ``figure1``
EXP-T12   Theorem 12 (Θ(log n) + exponential tail)    ``scaling``
EXP-T13   Theorem 13 (Ω(log n) lower bound)           ``lower_bound``
EXP-T14   Theorem 14 (hybrid scheduling, <= 12 ops)   ``hybrid``
EXP-T15   Theorem 15 (bounded space)                  ``bounded_space``
EXP-T1    Theorem 1 (unfairness)                      ``unfairness``
EXP-R10   Theorem 10 / Corollary 11 (renewal race)    ``renewal_race``
EXP-FAIL  Sections 3.1.2 and 10 (failures)            ``failures``
EXP-ABL*  Design ablations                            ``ablations``
EXP-MP    Section 10 (message passing, via ABD)       ``message_passing``
EXP-STAT  Section 10 (statistical adversary)          ``extensions``
EXP-CONT  Section 10 (memory contention)              ``extensions``
EXP-ID    Footnote 2 (id consensus)                   ``extensions``
EXP-MUTEX Section 10 (timing-based mutual exclusion)  ``mutual_exclusion``
========  ==========================================  =======================

Experiment modules are imported lazily (PEP 562): ``from
repro.experiments import figure1`` still works, but cheap registry
consumers (``python -m repro --list``) don't pay for importing all 12
harnesses.
"""

from __future__ import annotations

import importlib

from repro.experiments import registry  # noqa: F401  (the CLI's source of truth)

__all__ = [
    "ablations",
    "bounded_space",
    "extensions",
    "failures",
    "figure1",
    "hybrid",
    "lower_bound",
    "message_passing",
    "mutual_exclusion",
    "renewal_race",
    "scaling",
    "unfairness",
]


def __getattr__(name: str):
    if name in __all__:
        module = importlib.import_module(f"repro.experiments.{name}")
        globals()[name] = module  # cache for subsequent attribute access
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__) | {"registry"})
