"""Experiment harnesses: one module per paper artifact.

Every module follows the same shape:

* a ``run(...) -> *Result`` function (pure library API, seeded, returns
  dataclasses);
* a ``format_table(result) -> str`` printer producing the paper-shaped
  series;
* a ``main(argv)`` entry point, so each experiment is runnable as
  ``python -m repro.experiments.<name>``.

Index (see DESIGN.md section 3 for the full mapping):

========  ==========================================  =======================
Exp id    Paper artifact                              Module
========  ==========================================  =======================
EXP-F1    Figure 1                                    ``figure1``
EXP-T12   Theorem 12 (Θ(log n) + exponential tail)    ``scaling``
EXP-T13   Theorem 13 (Ω(log n) lower bound)           ``lower_bound``
EXP-T14   Theorem 14 (hybrid scheduling, <= 12 ops)   ``hybrid``
EXP-T15   Theorem 15 (bounded space)                  ``bounded_space``
EXP-T1    Theorem 1 (unfairness)                      ``unfairness``
EXP-R10   Theorem 10 / Corollary 11 (renewal race)    ``renewal_race``
EXP-FAIL  Sections 3.1.2 and 10 (failures)            ``failures``
EXP-ABL*  Design ablations                            ``ablations``
EXP-MP    Section 10 (message passing, via ABD)       ``message_passing``
EXP-STAT  Section 10 (statistical adversary)          ``extensions``
EXP-CONT  Section 10 (memory contention)              ``extensions``
EXP-ID    Footnote 2 (id consensus)                   ``extensions``
EXP-MUTEX Section 10 (timing-based mutual exclusion)  ``mutual_exclusion``
========  ==========================================  =======================
"""

from repro.experiments import (  # noqa: F401  (re-exported for discovery)
    ablations,
    bounded_space,
    extensions,
    failures,
    figure1,
    hybrid,
    lower_bound,
    message_passing,
    mutual_exclusion,
    renewal_race,
    scaling,
    unfairness,
)

__all__ = [
    "ablations",
    "bounded_space",
    "extensions",
    "failures",
    "figure1",
    "hybrid",
    "lower_bound",
    "message_passing",
    "mutual_exclusion",
    "renewal_race",
    "scaling",
    "unfairness",
]
