"""EXP-STAT / EXP-CONT / EXP-ID: the remaining Section-10 extensions.

* **EXP-STAT** — the statistical adversary: delays constrained only by
  sum Delta_ij <= r*M (running average), not per-operation.  The paper
  conjectures O(log n) termination survives; we measure termination under
  budget-saving burst schedules and compare with the per-operation-bounded
  adversary of the core model.
* **EXP-CONT** — memory contention: each access pays a penalty per recent
  rival access to the same location.  The paper conjectures contention
  *helps* (it slows the crowd at congested early-round registers while
  leaders run ahead on clear ones); we sweep the penalty and watch the
  mean termination round.
* **EXP-ID** — id consensus via the footnote-2 tree of binary instances:
  cost as a function of the id-space width (lg n levels, each O(log n)
  expected rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.aggregate import Mean, agreement_rate
from repro.api import (
    DeltaSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    noise_to_spec,
    run_sweep,
)
from repro.core.idconsensus import IdConsensus, id_bits
from repro.memory.contention import ContentionMeter, ContentiousScheduler
from repro.noise.distributions import Exponential, NoiseDistribution
from repro.sched.noisy import NoisyScheduler
from repro.sched.statistical import StatisticalDelta
from repro.sim.engine import NoisyEngine
from repro.sim.runner import (
    half_and_half,
    make_machines,
    make_memory_for,
    run_noisy_trial,
)
from repro.experiments._common import (
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
    sweep_value_seed,
)


# ---------------------------------------------------------------------------
# EXP-STAT
# ---------------------------------------------------------------------------


@dataclass
class StatRow:
    style: str
    burst_every: int
    mean_last_round: float
    agreement_rate: float


def run_statistical(n: int = 32, trials: int = 60, mean_bound: float = 0.5,
                    burst_everies: Sequence[int] = (2, 8, 32),
                    noise: Optional[NoiseDistribution] = None,
                    seed: SeedLike = 2000,
                    workers: Optional[int] = None,
                    cache_dir: Optional[str] = None) -> List[StatRow]:
    """Termination under statistical-adversary burst schedules.

    Declared as a :class:`~repro.api.SweepSpec` over the statistical
    delta's ``style`` and ``burst_every`` parameters (the delta schedule
    is fully declarative, so the whole sweep runs through the batch
    runner and aggregates columnar).
    """
    noise = noise if noise is not None else Exponential(1.0)
    sweep = SweepSpec(
        base=TrialSpec(n=n, model=NoisyModelSpec(
            noise=noise_to_spec(noise),
            delta=DeltaSpec.of("statistical", mean_bound=mean_bound,
                               style="bursts",
                               burst_every=burst_everies[0])),
            engine="event"),
        axes=(SweepAxis("model.delta.params.style",
                        ("bursts", "frontrunner")),
              SweepAxis("model.delta.params.burst_every",
                        tuple(burst_everies))),
        trials=trials)
    mean_last = Mean("last_decision_round")
    return [StatRow(style=cell.coord("style"),
                    burst_every=cell.coord("burst_every"),
                    mean_last_round=mean_last(frame),
                    agreement_rate=agreement_rate(frame))
            for cell, frame in run_sweep(sweep, seed=sweep_value_seed(seed),
                                         workers=workers,
                                         cache_dir=cache_dir)]


# ---------------------------------------------------------------------------
# EXP-CONT
# ---------------------------------------------------------------------------


@dataclass
class ContentionRow:
    penalty: float
    mean_last_round: float
    mean_total_penalty: float
    agreement_rate: float


def run_contention(n: int = 32, trials: int = 60,
                   penalties: Sequence[float] = (0.0, 0.1, 0.3, 1.0),
                   window: float = 2.0,
                   noise: Optional[NoiseDistribution] = None,
                   seed: SeedLike = 2000) -> List[ContentionRow]:
    """Termination under the interference model, sweeping the penalty."""
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    rows = []
    for penalty in penalties:
        lasts, charges, agreed = [], [], 0
        for trial_rng in spawn(root, trials):
            sub = spawn(trial_rng, 2)
            machines = make_machines("lean", half_and_half(n))
            memory = make_memory_for(machines)
            meter = ContentionMeter(penalty=penalty, window=window)
            scheduler = ContentiousScheduler(
                NoisyScheduler(noise, sub[0]), meter)
            result = NoisyEngine(machines, memory, scheduler).run()
            lasts.append(result.last_decision_round)
            charges.append(meter.total_penalty)
            agreed += 1 if result.agreed else 0
        rows.append(ContentionRow(penalty=penalty,
                                  mean_last_round=float(np.mean(lasts)),
                                  mean_total_penalty=float(np.mean(charges)),
                                  agreement_rate=agreed / trials))
    return rows


# ---------------------------------------------------------------------------
# EXP-ID
# ---------------------------------------------------------------------------


@dataclass
class IdRow:
    n: int
    bits: int
    mean_ops_per_proc: float
    winner_always_valid: bool
    agreement_rate: float


def run_id_consensus(ns: Sequence[int] = (2, 4, 8, 16), trials: int = 40,
                     noise: Optional[NoiseDistribution] = None,
                     seed: SeedLike = 2000) -> List[IdRow]:
    """Cost of the footnote-2 id-consensus tree by id-space width."""
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    rows = []
    for n in ns:
        bits = id_bits(n)
        ops, agreed, valid = [], 0, True
        for trial_rng in spawn(root, trials):
            factory = lambda pid, bit: IdConsensus(pid, pid, bits, n)
            trial = run_noisy_trial(n, noise, seed=trial_rng,
                                    protocol=factory, engine="event",
                                    check=False)
            winners = {m.winner for m in trial.machines}  # type: ignore[attr-defined]
            agreed += 1 if len(winners) == 1 else 0
            valid &= all(w is not None and 0 <= w < n for w in winners)
            ops.append(trial.total_ops / n)
        rows.append(IdRow(n=n, bits=bits,
                          mean_ops_per_proc=float(np.mean(ops)),
                          winner_always_valid=valid,
                          agreement_rate=agreed / trials))
    return rows


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


@dataclass
class ExtensionsResult:
    statistical: List[StatRow]
    contention: List[ContentionRow]
    id_consensus: List[IdRow]
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


def run(n: int = 32, trials: int = 60,
        seed: SeedLike = 2000,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None) -> ExtensionsResult:
    """All three Section-10 extensions.

    The statistical-adversary sweep is declarative and runs through the
    sweep framework; contention and id consensus keep their bespoke
    loops (a live :class:`ContentionMeter` / machine factory is
    inherently opaque to the spec layer).
    """
    root = make_rng(seed)
    entropy = seed_entropy(root)
    seeds = spawn(root, 3)
    return ExtensionsResult(
        statistical=run_statistical(n=n, trials=trials, seed=seeds[0],
                                    workers=workers, cache_dir=cache_dir),
        contention=run_contention(n=n, trials=trials, seed=seeds[1]),
        id_consensus=run_id_consensus(trials=max(trials // 2, 10),
                                      seed=seeds[2]),
        seed=entropy,
    )


def format_result(result: ExtensionsResult) -> str:
    out = [format_table(
        ["style", "burst every", "mean last round", "agree"],
        [(r.style, r.burst_every, r.mean_last_round, r.agreement_rate)
         for r in result.statistical],
        title="EXP-STAT — statistical adversary (sum Delta <= r*M)")]
    out.append("")
    out.append(format_table(
        ["penalty", "mean last round", "mean total stall", "agree"],
        [(r.penalty, r.mean_last_round, r.mean_total_penalty,
          r.agreement_rate) for r in result.contention],
        title="EXP-CONT — memory contention"))
    out.append("")
    out.append(format_table(
        ["n", "id bits", "ops/process", "winner valid", "agree"],
        [(r.n, r.bits, r.mean_ops_per_proc, r.winner_always_valid,
          r.agreement_rate) for r in result.id_consensus],
        title="EXP-ID — id consensus (footnote-2 tree)"))
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Section-10 extensions: statistical adversary, "
                          "contention, id consensus.")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(trials=min(scale.trials, 100), seed=scale.seed,
                            workers=scale.workers,
                            cache_dir=scale.cache_dir)))


if __name__ == "__main__":  # pragma: no cover
    main()
