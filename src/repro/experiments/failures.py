"""EXP-FAIL: failures — random halting (§3.1.2) and adaptive crashes (§10).

* **Random halting**: sweep the per-operation halting probability h.
  Theorem 12 covers this regime: the race ends (by a winner or by
  extinction) in O(log n) rounds; we measure termination rounds and the
  fraction of processes that die.
* **Adaptive crashes**: the kill-the-leader adversary with a budget of f
  crashes.  Restarting the Theorem-12 argument per crash gives the paper's
  O(f·log n) upper bound (Section 10); the measured mean termination round
  should grow roughly linearly in f.  The paper conjectures the truth is
  O(log n); the measured slope speaks to that conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.aggregate import Mean, decided_count, mean_halted
from repro.analysis.stats import FitResult
from repro.api import (
    FailureSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    noise_to_spec,
    run_sweep,
)
from repro.failures.injection import KillLeaderAdversary
from repro.noise.distributions import Exponential, NoiseDistribution
from repro.sim.runner import run_noisy_trial
from repro.experiments._common import (
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
    sweep_value_seed,
)

DEFAULT_HS = (0.0, 0.001, 0.005, 0.02)
DEFAULT_BUDGETS = (0, 1, 2, 4, 8)


@dataclass
class HaltingRow:
    h: float
    trials: int
    decided_trials: int
    mean_last_round: Optional[float]
    mean_halted: float


@dataclass
class CrashRow:
    budget: int
    trials: int
    mean_last_round: float
    mean_crashes_used: float


@dataclass
class FailureResult:
    n: int
    halting: List[HaltingRow]
    crashes: List[CrashRow]
    #: Least-squares slope of mean round vs crash budget f.
    crash_slope: float
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


def run_halting(n: int, hs: Sequence[float], trials: int,
                noise: NoiseDistribution, seed: SeedLike,
                engine: str = "event",
                backend: str = "numpy",
                workers: Optional[int] = None,
                cache_dir: Optional[str] = None) -> List[HaltingRow]:
    """The halting sweep, declared as a :class:`~repro.api.SweepSpec`
    over the ``failures.h`` axis.

    Random halting compiles into per-process death schedules on the
    vectorized engine, so ``engine="fast"`` runs this sweep at large n;
    the adaptive-crash sweep stays on the event engine regardless (an
    adaptive adversary cannot be presampled obliviously).
    """
    sweep = SweepSpec(
        base=TrialSpec(n=n, model=NoisyModelSpec(noise=noise_to_spec(noise)),
                       engine=engine, backend=backend),
        axes=(SweepAxis("failures.h", tuple(hs)),),
        trials=trials)
    mean_last = Mean("last_decision_round")
    rows = []
    for cell, frame in run_sweep(sweep, seed=sweep_value_seed(seed),
                                 workers=workers, cache_dir=cache_dir):
        decided = decided_count(frame)
        rows.append(HaltingRow(
            h=cell.coord("h"), trials=trials, decided_trials=decided,
            mean_last_round=mean_last(frame) if decided else None,
            mean_halted=mean_halted(frame)))
    return rows


def run_crashes(n: int, budgets: Sequence[int], trials: int,
                noise: NoiseDistribution, seed: SeedLike) -> List[CrashRow]:
    root = make_rng(seed)
    rows = []
    for budget in budgets:
        lasts: List[float] = []
        used: List[int] = []
        for trial_rng in spawn(root, trials):
            # lead=1: crash a process as soon as it pulls one round ahead.
            # (With lead=2 the leader has typically already decided by the
            # time the adversary sees the lead, so the budget goes unused.)
            adversary = KillLeaderAdversary(budget=budget, lead=1)
            trial = run_noisy_trial(n, noise, seed=trial_rng,
                                    crash_adversary=adversary,
                                    engine="event")
            if trial.last_decision_round is not None:
                lasts.append(trial.last_decision_round)
            used.append(len(adversary.crashed))
        rows.append(CrashRow(
            budget=budget, trials=trials,
            mean_last_round=float(np.mean(lasts)) if lasts else float("nan"),
            mean_crashes_used=float(np.mean(used))))
    return rows


def run(n: int = 64,
        hs: Sequence[float] = DEFAULT_HS,
        budgets: Sequence[int] = DEFAULT_BUDGETS,
        trials: int = 100,
        noise: Optional[NoiseDistribution] = None,
        seed: SeedLike = 2000,
        engine: str = "event",
        backend: str = "numpy",
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None) -> FailureResult:
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    entropy = seed_entropy(root)
    seeds = spawn(root, 2)
    halting = run_halting(n, hs, trials, noise, seeds[0], engine=engine,
                          backend=backend,
                          workers=workers, cache_dir=cache_dir)
    crashes = run_crashes(n, budgets, trials, noise, seeds[1])
    xs = np.array([row.budget for row in crashes], dtype=float)
    ys = np.array([row.mean_last_round for row in crashes], dtype=float)
    slope = float(np.polyfit(xs, ys, 1)[0]) if len(xs) >= 2 else 0.0
    return FailureResult(n=n, halting=halting, crashes=crashes,
                         crash_slope=slope, seed=entropy)


def format_result(result: FailureResult) -> str:
    rows = [(r.h, r.decided_trials, r.trials,
             "-" if r.mean_last_round is None else f"{r.mean_last_round:.2f}",
             r.mean_halted)
            for r in result.halting]
    out = [format_table(
        ["h", "decided trials", "trials", "mean last round", "mean halted"],
        rows, title=f"EXP-FAIL — random halting, n={result.n}")]
    rows = [(r.budget, r.mean_last_round, r.mean_crashes_used)
            for r in result.crashes]
    out.append("")
    out.append(format_table(
        ["crash budget f", "mean last round", "crashes used"],
        rows, title="adaptive kill-the-leader adversary"))
    out.append(f"rounds-per-crash slope: {result.crash_slope:.3f} "
               "(O(f log n) upper bound; paper conjectures O(log n))")
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Failures: random halting + adaptive crashes.")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(trials=min(scale.trials, 200), seed=scale.seed,
                            engine=scale.engine or "event",
                            backend=scale.backend or "numpy",
                            workers=scale.workers,
                            cache_dir=scale.cache_dir)))


if __name__ == "__main__":  # pragma: no cover
    main()
