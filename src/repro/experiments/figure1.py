"""EXP-F1: reproduce Figure 1.

The paper's only figure: mean round at which the first process terminates,
versus the number of processes (log-x, 1 to 100,000), for six interarrival
distributions, 10,000 trials per point, half the processes starting with
input 0 and half with 1, all starting together modulo a uniform (0, 1e-8)
dither.

Expected shape (paper Section 9): logarithmic growth with small constants
for five of the distributions (roughly 2 -> 5-13 rounds over the grid), and
the *inverted* (decreasing) curve for the truncated normal, whose large-n
behaviour the paper calls "intriguing".

Run ``python -m repro.experiments.figure1`` (add ``--paper`` for the full
grid) to print the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro._rng import SeedLike, make_rng
from repro.analysis.aggregate import Mean, MeanCI
from repro.api import (
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    noise_to_spec,
    run_sweep,
)
from repro.noise.distributions import NoiseDistribution, figure1_distributions
from repro.experiments._common import (
    DEFAULT_NS,
    DEFAULT_TRIALS,
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
    sweep_value_seed,
)


@dataclass
class Figure1Point:
    """One (distribution, n) point of the figure."""

    n: int
    trials: int
    mean_round: float
    ci95: float
    mean_ops_first: float


@dataclass
class Figure1Result:
    """All series of the reproduced figure.

    ``seed`` records the root ``SeedSequence.entropy`` (the seed itself
    for integer seeds), so the result is attributable/reproducible even
    when ``run`` was given a generator or OS-entropy root.
    """

    ns: Sequence[int]
    trials: int
    seed: int
    series: Dict[str, list] = field(default_factory=dict)

    def point(self, distribution: str, n: int) -> Figure1Point:
        for p in self.series[distribution]:
            if p.n == n:
                return p
        raise KeyError((distribution, n))


def sweep_spec(ns: Sequence[int],
               trials: int,
               distributions: Dict[str, NoiseDistribution],
               engine: str = "auto",
               backend: str = "numpy",
               max_total_ops: Optional[int] = None) -> SweepSpec:
    """The Figure-1 grid as a declarative sweep: distribution x n."""
    specs = tuple(noise_to_spec(dist) for dist in distributions.values())
    base = TrialSpec(n=1, model=NoisyModelSpec(noise=specs[0]),
                     engine=engine, backend=backend,
                     stop_after_first_decision=True,
                     max_total_ops=max_total_ops)
    return SweepSpec(base=base, trials=trials, axes=(
        SweepAxis("model.noise", specs, name="distribution",
                  labels=tuple(distributions)),
        SweepAxis("n", tuple(ns)),
    ))


def run(ns: Sequence[int] = DEFAULT_NS,
        trials: int = DEFAULT_TRIALS,
        distributions: Optional[Dict[str, NoiseDistribution]] = None,
        seed: SeedLike = 2000,
        engine: str = "auto",
        backend: str = "numpy",
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        max_total_ops: Optional[int] = None) -> Figure1Result:
    """Reproduce the Figure-1 sweep.

    The sweep is one :func:`sweep_spec` declaration executed through
    :func:`~repro.api.run_sweep`: per-trial child seeds are spawned from
    the root generator in grid order, so the output is identical for any
    ``workers`` value (and to the historical per-cell loop), and each
    cell aggregates columnar on its result frame.  Trials that never
    decided (possible only under a ``max_total_ops`` budget) are
    filtered out of the means; a cell with *no* decided trials raises
    :class:`~repro.errors.AggregationError` naming the offending spec.

    Args:
        ns: process counts (paper: 1 to 100,000 log-spaced).
        trials: trials per point (paper: 10,000).
        distributions: name -> distribution; defaults to the paper's six.
        seed: root seed.
        engine: simulation engine selector (see
            :func:`repro.api.resolve_engine`).
        backend: array backend for the lockstep kernel (numpy / numba /
            cupy; see :mod:`repro.sim.backend`).
        workers: worker processes for the batch runner (None = serial).
        cache_dir: opt-in on-disk sweep cache (resume ``--paper`` runs).
        max_total_ops: optional per-trial operation budget.
    """
    if distributions is None:
        distributions = figure1_distributions()
    root = make_rng(seed)
    result = Figure1Result(ns=tuple(ns), trials=trials,
                           seed=seed_entropy(root))
    sweep = sweep_spec(ns, trials, distributions, engine=engine,
                       backend=backend, max_total_ops=max_total_ops)
    mean_ci = MeanCI("first_decision_round")
    mean_ops = Mean("first_decision_ops")
    for cell, frame in run_sweep(sweep, seed=sweep_value_seed(root),
                                 workers=workers, cache_dir=cache_dir):
        mean, half = mean_ci(frame)
        point = Figure1Point(n=cell.coord("n"), trials=trials,
                             mean_round=mean, ci95=half,
                             mean_ops_first=mean_ops(frame))
        result.series.setdefault(cell.label("distribution"), []).append(point)
    return result


def format_result(result: Figure1Result) -> str:
    """Print the figure as one table: rows = n, columns = distributions."""
    names = list(result.series)
    headers = ["n"] + names
    rows = []
    for n in result.ns:
        row = [n]
        for name in names:
            p = result.point(name, n)
            row.append(f"{p.mean_round:.2f}")
        rows.append(row)
    return format_table(
        headers, rows,
        title=(f"Figure 1 — mean round of first termination "
               f"({result.trials} trials/point)"))


def ascii_plot(result: Figure1Result, height: int = 16) -> str:
    """A terminal rendering of the figure (log-x, linear-y), one mark per
    series, mirroring the paper's axes."""
    import math

    names = list(result.series)
    marks = "exgdtnabc"[: len(names)]
    all_pts = [p for pts in result.series.values() for p in pts]
    ymax = max(p.mean_round for p in all_pts)
    ymin = min(p.mean_round for p in all_pts)
    span = max(ymax - ymin, 1e-9)
    xs = sorted({p.n for p in all_pts})
    width = len(xs)
    grid = [[" "] * width for _ in range(height)]
    for mark, name in zip(marks, names):
        for p in result.series[name]:
            col = xs.index(p.n)
            rowi = int(round((ymax - p.mean_round) / span * (height - 1)))
            grid[rowi][col] = mark
    lines = [f"{ymax:6.2f} |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append("       |" + "".join(grid[r]))
    lines.append(f"{ymin:6.2f} |" + "".join(grid[-1]))
    lines.append("        " + "".join("^" for _ in xs))
    lines.append("        n = " + ", ".join(str(x) for x in xs))
    legend = ", ".join(f"{m}={n}" for m, n in zip(marks, names))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = scale_parser("Reproduce Figure 1 of the paper.")
    parser.add_argument("--plot", action="store_true",
                        help="also render an ASCII plot")
    scale, args = parse_scale(parser, argv)
    result = run(ns=scale.ns, trials=scale.trials, seed=scale.seed,
                 engine=scale.engine or "auto",
                 backend=scale.backend or "numpy", workers=scale.workers,
                 cache_dir=scale.cache_dir)
    print(format_result(result))
    if args.plot:
        print()
        print(ascii_plot(result))


if __name__ == "__main__":  # pragma: no cover
    main()
