"""EXP-F1: reproduce Figure 1.

The paper's only figure: mean round at which the first process terminates,
versus the number of processes (log-x, 1 to 100,000), for six interarrival
distributions, 10,000 trials per point, half the processes starting with
input 0 and half with 1, all starting together modulo a uniform (0, 1e-8)
dither.

Expected shape (paper Section 9): logarithmic growth with small constants
for five of the distributions (roughly 2 -> 5-13 rounds over the grid), and
the *inverted* (decreasing) curve for the truncated normal, whose large-n
behaviour the paper calls "intriguing".

Run ``python -m repro.experiments.figure1`` (add ``--paper`` for the full
grid) to print the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro._rng import SeedLike, make_rng
from repro.analysis.stats import mean_confidence_interval
from repro.api import BatchRunner, NoisyModelSpec, TrialSpec, noise_to_spec
from repro.noise.distributions import NoiseDistribution, figure1_distributions
from repro.experiments._common import (
    DEFAULT_NS,
    DEFAULT_TRIALS,
    format_table,
    parse_scale,
    scale_parser,
)


@dataclass
class Figure1Point:
    """One (distribution, n) point of the figure."""

    n: int
    trials: int
    mean_round: float
    ci95: float
    mean_ops_first: float


@dataclass
class Figure1Result:
    """All series of the reproduced figure."""

    ns: Sequence[int]
    trials: int
    seed: int
    series: Dict[str, list] = field(default_factory=dict)

    def point(self, distribution: str, n: int) -> Figure1Point:
        for p in self.series[distribution]:
            if p.n == n:
                return p
        raise KeyError((distribution, n))


def run(ns: Sequence[int] = DEFAULT_NS,
        trials: int = DEFAULT_TRIALS,
        distributions: Optional[Dict[str, NoiseDistribution]] = None,
        seed: SeedLike = 2000,
        engine: str = "auto",
        workers: Optional[int] = None) -> Figure1Result:
    """Reproduce the Figure-1 sweep.

    The sweep is declared as a grid of :class:`~repro.api.TrialSpec`
    values (one per (distribution, n) cell) dispatched through the
    :class:`~repro.api.BatchRunner`; per-trial child seeds are spawned
    from the root generator in grid order, so the output is identical
    for any ``workers`` value (and to the historical serial loop).

    Args:
        ns: process counts (paper: 1 to 100,000 log-spaced).
        trials: trials per point (paper: 10,000).
        distributions: name -> distribution; defaults to the paper's six.
        seed: root seed.
        engine: simulation engine selector (see
            :func:`repro.api.resolve_engine`).
        workers: worker processes for the batch runner (None = serial).
    """
    if distributions is None:
        distributions = figure1_distributions()
    root = make_rng(seed)
    runner = BatchRunner(workers=workers)
    result = Figure1Result(ns=tuple(ns), trials=trials,
                           seed=seed if isinstance(seed, int) else -1)
    for name, dist in distributions.items():
        points = []
        for n in ns:
            spec = TrialSpec(n=n, model=NoisyModelSpec(noise=noise_to_spec(dist)),
                             engine=engine, stop_after_first_decision=True)
            batch = runner.run(spec, trials, seed=root)
            rounds = [t.first_decision_round for t in batch]
            ops = [t.first_decision_ops for t in batch]
            mean, half = mean_confidence_interval(rounds)
            points.append(Figure1Point(
                n=n, trials=trials, mean_round=mean, ci95=half,
                mean_ops_first=sum(ops) / len(ops)))
        result.series[name] = points
    return result


def format_result(result: Figure1Result) -> str:
    """Print the figure as one table: rows = n, columns = distributions."""
    names = list(result.series)
    headers = ["n"] + names
    rows = []
    for n in result.ns:
        row = [n]
        for name in names:
            p = result.point(name, n)
            row.append(f"{p.mean_round:.2f}")
        rows.append(row)
    return format_table(
        headers, rows,
        title=(f"Figure 1 — mean round of first termination "
               f"({result.trials} trials/point)"))


def ascii_plot(result: Figure1Result, height: int = 16) -> str:
    """A terminal rendering of the figure (log-x, linear-y), one mark per
    series, mirroring the paper's axes."""
    import math

    names = list(result.series)
    marks = "exgdtnabc"[: len(names)]
    all_pts = [p for pts in result.series.values() for p in pts]
    ymax = max(p.mean_round for p in all_pts)
    ymin = min(p.mean_round for p in all_pts)
    span = max(ymax - ymin, 1e-9)
    xs = sorted({p.n for p in all_pts})
    width = len(xs)
    grid = [[" "] * width for _ in range(height)]
    for mark, name in zip(marks, names):
        for p in result.series[name]:
            col = xs.index(p.n)
            rowi = int(round((ymax - p.mean_round) / span * (height - 1)))
            grid[rowi][col] = mark
    lines = [f"{ymax:6.2f} |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append("       |" + "".join(grid[r]))
    lines.append(f"{ymin:6.2f} |" + "".join(grid[-1]))
    lines.append("        " + "".join("^" for _ in xs))
    lines.append("        n = " + ", ".join(str(x) for x in xs))
    legend = ", ".join(f"{m}={n}" for m, n in zip(marks, names))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = scale_parser("Reproduce Figure 1 of the paper.")
    parser.add_argument("--plot", action="store_true",
                        help="also render an ASCII plot")
    scale, args = parse_scale(parser, argv)
    result = run(ns=scale.ns, trials=scale.trials, seed=scale.seed,
                 engine=scale.engine or "auto", workers=scale.workers)
    print(format_result(result))
    if args.plot:
        print()
        print(ascii_plot(result))


if __name__ == "__main__":  # pragma: no cover
    main()
