"""EXP-ABL: design ablations the paper's discussion calls out.

* **ABL1 — the "superfluous operation" optimization (Section 4).**  The
  paper warns that eliding the apparently redundant write/read speeds up
  laggards and therefore prolongs the race.  We run the canonical and
  optimized protocols on matched workloads and compare termination rounds
  and operation counts.
* **ABL2 — noise magnitude.**  The Θ(log n) result is
  distribution-independent but the constants are not: smaller noise
  variance (relative to the round length) means slower dispersal.  We
  sweep the σ of the truncated normal and the adversary delay bound M.
* **ABL3 — decision lag.**  ``lag=1`` is the paper's protocol; ``lag=2``
  (require a three-round lead) is safe but slower — quantifying why the
  paper's decision rule reads exactly ``a_{1-p}[r-1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._rng import SeedLike, make_rng, spawn
from repro.analysis.aggregate import Mean
from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)
from repro.noise.distributions import (
    Exponential,
    NoiseDistribution,
    TruncatedNormal,
)
from repro.sched.delta import RandomDelta
from repro.sim.fast import has_fast_replay
from repro.sim.runner import run_noisy_trial
from repro.experiments._common import (
    format_table,
    parse_scale,
    scale_parser,
    seed_entropy,
    sweep_value_seed,
)


@dataclass
class ProtocolRow:
    protocol: str
    n: int
    mean_first_round: float
    mean_last_round: float
    mean_total_ops: float


@dataclass
class SigmaRow:
    sigma: float
    mean_first_round: float


@dataclass
class DelayRow:
    bound: float
    mean_first_round: float


@dataclass
class AblationResult:
    protocols: List[ProtocolRow]
    sigmas: List[SigmaRow]
    delays: List[DelayRow]
    #: Root ``SeedSequence.entropy`` (the seed itself for int seeds).
    seed: Optional[int] = None


def compare_protocols(protocols: Sequence[str], n: int, trials: int,
                      noise: NoiseDistribution,
                      seed: SeedLike,
                      engine: str = "event",
                      backend: str = "numpy") -> List[ProtocolRow]:
    """ABL1/ABL3: identical workloads, different protocol variants.

    ``engine="fast"`` replays the variants that have a vectorized replay
    (see :data:`repro.sim.fast.FAST_VARIANTS`); protocols without one
    (e.g. shared-coin) keep the event engine.  The pairing is preserved
    either way — every protocol consumes the same per-trial seed stream.
    """
    root = make_rng(seed)
    trial_rngs = spawn(root, trials)
    rows = []
    for name in protocols:
        proto_engine = engine if has_fast_replay(name) else "event"
        firsts, lasts, ops = [], [], []
        for trial_rng in trial_rngs:
            # Reuse the same trial seed stream across protocols so the
            # comparison is paired (same noise realizations).
            sub = np.random.Generator(np.random.PCG64(
                trial_rng.bit_generator.seed_seq))  # type: ignore[attr-defined]
            trial = run_noisy_trial(n, noise, seed=sub, protocol=name,
                                    engine=proto_engine, backend=backend)
            firsts.append(trial.first_decision_round)
            lasts.append(trial.last_decision_round)
            ops.append(trial.total_ops)
        rows.append(ProtocolRow(
            protocol=name, n=n,
            mean_first_round=float(np.mean(firsts)),
            mean_last_round=float(np.mean(lasts)),
            mean_total_ops=float(np.mean(ops))))
    return rows


def sweep_sigma(sigmas: Sequence[float], n: int, trials: int,
                seed: SeedLike,
                engine: str = "auto",
                backend: str = "numpy",
                workers: Optional[int] = None,
                cache_dir: Optional[str] = None) -> List[SigmaRow]:
    """ABL2a: termination vs noise spread (truncated normal, mean 1).

    Declared as a :class:`~repro.api.SweepSpec` over the
    ``model.noise.params.sigma`` axis and aggregated columnar.
    """
    sweep = SweepSpec(
        base=TrialSpec(
            n=n,
            model=NoisyModelSpec(noise=NoiseSpec.of(
                "truncated-normal", mu=1.0, sigma=sigmas[0], low=0.0,
                high=2.0)),
            engine=engine,
            backend=backend,
            stop_after_first_decision=True),
        axes=(SweepAxis("model.noise.params.sigma", tuple(sigmas)),),
        trials=trials)
    mean_first = Mean("first_decision_round")
    return [SigmaRow(sigma=cell.coord("sigma"),
                     mean_first_round=mean_first(frame))
            for cell, frame in run_sweep(sweep, seed=sweep_value_seed(seed),
                                         workers=workers,
                                         cache_dir=cache_dir)]


def sweep_delay_bound(bounds: Sequence[float], n: int, trials: int,
                      seed: SeedLike) -> List[DelayRow]:
    """ABL2b: termination vs the adversary delay bound M.

    Adversarial delays here are oblivious uniform [0, M] per operation;
    larger M gives the adversary more room but also adds dispersal, so the
    effect on the race is the interesting part.  This sweep always runs on
    the event engine (``--engine`` does not apply): the live
    :class:`RandomDelta` schedule presamples a fixed 400-op delay window,
    which the fast engine's horizon-doubling retries could outrun.
    """
    root = make_rng(seed)
    noise = Exponential(1.0)
    rows = []
    for bound in bounds:
        firsts = []
        for trial_rng in spawn(root, trials):
            sub = spawn(trial_rng, 2)
            delta = RandomDelta(bound, sub[0], n=n, max_ops=400)
            trial = run_noisy_trial(n, noise, seed=sub[1], delta=delta,
                                    stop_after_first_decision=True,
                                    engine="event")
            firsts.append(trial.first_decision_round)
        rows.append(DelayRow(bound=bound,
                             mean_first_round=float(np.mean(firsts))))
    return rows


def run(n: int = 64, trials: int = 100,
        protocols: Sequence[str] = ("lean", "optimized", "conservative",
                                    "random-tie", "shared-coin"),
        sigmas: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
        delay_bounds: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
        noise: Optional[NoiseDistribution] = None,
        seed: SeedLike = 2000,
        engine: str = "event",
        backend: str = "numpy",
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None) -> AblationResult:
    """Run all three ablations.

    ``engine`` selects the engine for the protocol comparison and the
    sigma sweep; the delay-bound sweep is event-engine-only (see
    :func:`sweep_delay_bound`).  ``backend`` rides along the same two
    lanes and only takes effect where the lockstep kernel runs.  The protocol comparison keeps its
    bespoke loop on purpose: its trials are *paired* (every protocol
    re-consumes the same per-trial seed streams), which a sweep's
    independent per-cell seed blocks deliberately do not express.
    """
    noise = noise if noise is not None else Exponential(1.0)
    root = make_rng(seed)
    entropy = seed_entropy(root)
    seeds = spawn(root, 3)
    return AblationResult(
        protocols=compare_protocols(protocols, n, trials, noise, seeds[0],
                                    engine=engine, backend=backend),
        sigmas=sweep_sigma(sigmas, n, trials, seeds[1],
                           engine=engine if engine != "event" else "auto",
                           backend=backend,
                           workers=workers, cache_dir=cache_dir),
        delays=sweep_delay_bound(delay_bounds, n, max(trials // 2, 20),
                                 seeds[2]),
        seed=entropy,
    )


def format_result(result: AblationResult) -> str:
    rows = [(r.protocol, r.n, r.mean_first_round, r.mean_last_round,
             r.mean_total_ops) for r in result.protocols]
    out = [format_table(
        ["protocol", "n", "mean first", "mean last", "mean total ops"],
        rows, title="EXP-ABL1/ABL3 — protocol variants (paired workloads)")]
    out.append("")
    out.append(format_table(
        ["sigma", "mean first round"],
        [(r.sigma, r.mean_first_round) for r in result.sigmas],
        title="EXP-ABL2a — truncated-normal spread"))
    out.append("")
    out.append(format_table(
        ["delay bound M", "mean first round"],
        [(r.bound, r.mean_first_round) for r in result.delays],
        title="EXP-ABL2b — adversary delay bound"))
    return "\n".join(out)


def main(argv=None) -> None:
    parser = scale_parser("Design ablations (Section 4 and Section 6).")
    scale, _ = parse_scale(parser, argv)
    print(format_result(run(trials=min(scale.trials, 200), seed=scale.seed,
                            engine=scale.engine or "event",
                            backend=scale.backend or "numpy",
                            workers=scale.workers,
                            cache_dir=scale.cache_dir)))


if __name__ == "__main__":  # pragma: no cover
    main()
