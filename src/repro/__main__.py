"""Top-level command-line interface: ``python -m repro <experiment>``.

Dispatches through the experiment registry
(:mod:`repro.experiments.registry`); every experiment accepts ``--ns``,
``--trials``, ``--seed``, ``--workers``, and ``--paper`` (full paper
scale).

* ``python -m repro --list`` prints the registry as JSON (one record per
  experiment: name, module, paper artifact, summary, and whether its
  sweeps run through the parallel batch runner).
* ``python -m repro all`` runs every experiment and prints all the
  paper-shaped tables.  Shared options are forwarded to every experiment;
  per-experiment extras use ``<experiment>:<arg>`` tokens, e.g.::

      python -m repro all --trials 50 figure1:--plot scaling:--tail-n \\
          scaling:128
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

from repro.experiments import registry


def __getattr__(name: str):
    # Back-compat mapping (name -> imported module), derived from the
    # registry.  Built lazily (PEP 562) so cheap paths like --list and
    # --help don't import all 12 experiment modules.
    if name == "EXPERIMENTS":
        return {info.name: info.load() for info in registry.infos()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _usage() -> str:
    names = "\n  ".join(registry.names())
    return (f"usage: python -m repro <experiment> [options]\n"
            f"       python -m repro --list\n"
            f"       python -m repro bench [--label L] [--trials T]\n"
            f"       python -m repro serve "
            f"<serve|submit|status|watch|result|cancel|gc> [options]\n"
            f"       python -m repro all [options] [<experiment>:<arg> ...]\n\n"
            f"experiments:\n  {names}\n  all\n\n"
            "common options: --ns N [N ...], --trials T, --seed S, "
            "--workers W, --engine {auto,event,fast,kernel}, "
            "--backend {numpy,numba,cupy}, --paper\n"
            "sweep service: `python -m repro serve serve --store DIR` runs "
            "the job API;\n  submit/status/watch/result talk to it "
            "(--url) or to a local store (--store)")


def _split_all_args(rest: List[str]) -> Tuple[List[str], Dict[str, List[str]]]:
    """Separate shared options from ``<experiment>:<arg>`` extras."""
    shared: List[str] = []
    extras: Dict[str, List[str]] = {}
    known = set(registry.names())
    for token in rest:
        name, sep, arg = token.partition(":")
        if sep and name in known:
            extras.setdefault(name, []).append(arg)
        else:
            shared.append(token)
    return shared, extras


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    if argv[0] == "--list":
        print(json.dumps(registry.describe_all(), indent=2))
        return 0
    name, rest = argv[0], argv[1:]
    if name == "bench":
        from repro import benchtool
        return benchtool.main(rest)
    if name == "serve":
        from repro.serve import cli as serve_cli
        return serve_cli.main(rest)
    if name == "all":
        shared, extras = _split_all_args(rest)
        for info in registry.infos():
            print(f"\n{'=' * 72}\n== {info.name}\n{'=' * 72}")
            info.main(shared + extras.get(info.name, []))
        return 0
    info = registry.get(name)
    if info is None:
        print(f"unknown experiment {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    info.main(rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
