"""Top-level command-line interface: ``python -m repro <experiment>``.

Dispatches to the experiment harnesses of :mod:`repro.experiments`; every
experiment accepts ``--ns``, ``--trials``, ``--seed``, and ``--paper``
(full paper scale).  ``python -m repro all`` runs every experiment at its
default scale and prints all the paper-shaped tables.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablations,
    bounded_space,
    extensions,
    failures,
    figure1,
    hybrid,
    lower_bound,
    message_passing,
    mutual_exclusion,
    renewal_race,
    scaling,
    unfairness,
)

EXPERIMENTS = {
    "figure1": figure1,
    "scaling": scaling,
    "lower-bound": lower_bound,
    "hybrid": hybrid,
    "bounded-space": bounded_space,
    "unfairness": unfairness,
    "renewal-race": renewal_race,
    "failures": failures,
    "ablations": ablations,
    "message-passing": message_passing,
    "extensions": extensions,
    "mutual-exclusion": mutual_exclusion,
}


def _usage() -> str:
    names = "\n  ".join(sorted(EXPERIMENTS))
    return (f"usage: python -m repro <experiment> [options]\n\n"
            f"experiments:\n  {names}\n  all\n\n"
            "common options: --ns N [N ...], --trials T, --seed S, --paper")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0
    name, rest = argv[0], argv[1:]
    if name == "all":
        for key in sorted(EXPERIMENTS):
            print(f"\n{'=' * 72}\n== {key}\n{'=' * 72}")
            EXPERIMENTS[key].main(rest)
        return 0
    module = EXPERIMENTS.get(name)
    if module is None:
        print(f"unknown experiment {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    module.main(rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
