"""Asynchronous message-passing substrate (Section 10, "Message passing").

The paper asks whether noisy scheduling helps consensus in asynchronous
message passing.  This package provides the substrate to study that
question:

* :mod:`repro.netsim.network` — a discrete-event message-passing network
  with noisy per-message delivery latencies and crash failures;
* :mod:`repro.netsim.abd` — the Attiya-Bar-Noy-Dolev (ABD) emulation of
  multi-writer multi-reader atomic registers over a majority of possibly
  crashing servers;
* :mod:`repro.netsim.runner` — runs any shared-memory protocol machine
  (lean-consensus included) unchanged on top of the emulated registers.

The composition realizes the paper's suggestion concretely: network delay
noise plays the role of scheduling noise, and lean-consensus inherits its
O(log n)-flavoured termination, now tolerating a minority of server
crashes (the EXP-MP experiment measures this).
"""

from repro.netsim.network import Message, Network
from repro.netsim.abd import AbdClient, AbdServer, quorum_size
from repro.netsim.runner import MessagePassingTrial, run_mp_trial

__all__ = [
    "AbdClient",
    "AbdServer",
    "Message",
    "MessagePassingTrial",
    "Network",
    "quorum_size",
    "run_mp_trial",
]
