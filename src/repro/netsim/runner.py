"""Run shared-memory protocol machines over the ABD emulation.

Composition: each consensus process is an :class:`AbdClient` driving its
protocol machine; every ``peek()``-ed register operation becomes a
two-phase quorum transaction; the transaction's committed value feeds
``apply()``; repeat until the machine decides.

The registers' zero defaults and the lean arrays' read-only ``a[0] = 1``
prefixes are installed as server-side defaults, so protocol machines run
*unchanged*.

Safety note: ABD registers are linearizable, so Lemmas 2-4 apply verbatim
and agreement/validity hold in the message-passing system, crash failures
included (any minority of servers, any number of clients).  Termination is
where the paper's question lives: delivery-latency noise plays the role of
scheduling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro._rng import SeedLike, make_rng, spawn
from repro.core.invariants import check_agreement, check_validity
from repro.core.machine import ProcessMachine
from repro.errors import ConfigurationError
from repro.netsim.abd import AbdClient, AbdServer
from repro.netsim.network import Message, Network, Node
from repro.noise.distributions import NoiseDistribution
from repro.sim.runner import ProtocolLike, make_machines
from repro.types import Decision, Operation


def _lean_defaults(array: str, index: int) -> int:
    """Server-side register defaults: the racing arrays' 1-prefix."""
    if index == 0 and array.endswith(("a0", "a1")):
        return 1
    return 0


@dataclass
class MessagePassingTrial:
    """Outcome of one message-passing consensus execution."""

    n_clients: int
    n_servers: int
    crashed_servers: int
    inputs: Dict[int, int]
    decisions: Dict[int, Decision] = field(default_factory=dict)
    delivered_messages: int = 0
    sim_time: float = 0.0
    #: Register transactions committed across all clients.
    transactions: int = 0

    @property
    def all_decided(self) -> bool:
        return len(self.decisions) == self.n_clients

    @property
    def agreed(self) -> bool:
        return len({d.value for d in self.decisions.values()}) <= 1


class _ConsensusClient(AbdClient):
    """An ABD client that drives one protocol machine to a decision."""

    def __init__(self, machine: ProcessMachine, servers: List[str]) -> None:
        super().__init__(servers, on_complete=self._advance)
        self.machine = machine

    def on_start(self, now: float) -> Iterable[Message]:
        if self.machine.done:
            return []
        return self.begin(self.machine.peek())

    def _advance(self, op: Operation, value: int, now: float):
        from repro.types import OpResult
        self.machine.apply(OpResult(op, value))
        if self.machine.done:
            return []
        return self.begin(self.machine.peek())


def run_mp_trial(n: int,
                 latency: NoiseDistribution,
                 seed: SeedLike = None,
                 n_servers: int = 5,
                 crash_servers: int = 0,
                 inputs=None,
                 protocol: ProtocolLike = "lean",
                 max_messages: int = 2_000_000,
                 check: bool = True) -> MessagePassingTrial:
    """Run one consensus execution over the ABD-emulated registers.

    Args:
        n: number of consensus processes (clients).
        latency: per-message delivery-delay distribution.
        n_servers: register replicas; tolerates any minority crashing.
        crash_servers: how many servers to crash at time zero (must stay a
            minority).
        protocol: protocol name or factory (see
            :func:`repro.sim.runner.make_machines`).
    """
    if crash_servers * 2 >= n_servers:
        raise ConfigurationError(
            f"ABD needs a correct majority: {crash_servers} crashes of "
            f"{n_servers} servers is not a minority")
    root = make_rng(seed)
    rng_net, rng_proto = spawn(root, 2)

    if inputs is None:
        input_map = {pid: (0 if pid < n // 2 else 1) for pid in range(n)}
    elif isinstance(inputs, dict):
        input_map = dict(inputs)
    else:
        input_map = {pid: int(b) for pid, b in enumerate(inputs)}

    machines = make_machines(protocol, input_map, rng=rng_proto)
    network = Network(latency, rng_net)
    server_names = [f"server{i}" for i in range(n_servers)]
    for name in server_names:
        network.add_node(name, AbdServer(defaults=_lean_defaults))
    clients = []
    for machine in machines:
        client = _ConsensusClient(machine, server_names)
        network.add_node(f"client{machine.pid}", client)
        clients.append(client)
    for i in range(crash_servers):
        network.crash(server_names[i])

    network.start()
    network.run(until=lambda: all(c.machine.done for c in clients),
                max_messages=max_messages)

    trial = MessagePassingTrial(
        n_clients=n, n_servers=n_servers, crashed_servers=crash_servers,
        inputs=input_map,
        decisions={c.machine.pid: c.machine.decision for c in clients
                   if c.machine.decision is not None},
        delivered_messages=network.delivered,
        sim_time=network.now,
        transactions=sum(c.committed for c in clients))
    if check:
        check_agreement(trial.decisions)
        check_validity(trial.inputs, trial.decisions)
    return trial
