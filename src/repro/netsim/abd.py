"""ABD atomic-register emulation over crash-prone servers.

Attiya, Bar-Noy, and Dolev's classic construction: a multi-writer
multi-reader atomic register is emulated over ``n_servers`` replicas, of
which any minority may crash, using two-phase majority quorums:

* **write(v)**: query a majority for the highest timestamp; then send
  ``(ts + 1, writer_pid)``-stamped ``v`` to a majority.
* **read()**: query a majority for the highest stamped value; then
  *write back* that value to a majority (the famous "reads write" phase
  that makes reads linearizable); return it.

Timestamps are (counter, writer-pid) pairs, ordered lexicographically.

The client side is expressed as a reactive state machine so it composes
with :class:`~repro.netsim.network.Network`; one transaction is in flight
per client at a time, matching the one-operation-at-a-time protocol
machines of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.netsim.network import Message, Node
from repro.types import OpKind, Operation

#: Message tags.
QUERY = "Q"          # (QUERY, txn, array, index)
QUERY_REPLY = "QR"   # (QUERY_REPLY, txn, array, index, ts, wpid, value)
UPDATE = "U"         # (UPDATE, txn, array, index, ts, wpid, value)
UPDATE_ACK = "UA"    # (UPDATE_ACK, txn, array, index)

Stamp = Tuple[int, int]  # (counter, writer pid); lexicographic order


def quorum_size(n_servers: int) -> int:
    """Majority quorum size; tolerates f < n_servers / 2 crashes."""
    if n_servers < 1:
        raise ConfigurationError(f"need at least one server, got {n_servers}")
    return n_servers // 2 + 1


class AbdServer(Node):
    """A register replica: stores the highest-stamped value per location."""

    def __init__(self, defaults: Optional[Callable[[str, int], int]] = None) -> None:
        self.store: Dict[Tuple[str, int], Tuple[Stamp, int]] = {}
        self._defaults = defaults if defaults is not None else (lambda a, i: 0)
        #: Operation counters for reporting.
        self.queries = 0
        self.updates = 0

    def _lookup(self, array: str, index: int) -> Tuple[Stamp, int]:
        key = (array, index)
        if key not in self.store:
            return ((0, -1), self._defaults(array, index))
        return self.store[key]

    def on_message(self, msg: Message, now: float) -> Iterable[Message]:
        tag = msg.payload[0]
        if tag == QUERY:
            _, txn, array, index = msg.payload
            self.queries += 1
            (counter, wpid), value = self._lookup(array, index)
            return [Message(self.name, msg.src,
                            (QUERY_REPLY, txn, array, index,
                             counter, wpid, value))]
        if tag == UPDATE:
            _, txn, array, index, counter, wpid, value = msg.payload
            self.updates += 1
            key = (array, index)
            current, _ = self._lookup(array, index)
            if (counter, wpid) > current:
                self.store[key] = ((counter, wpid), value)
            return [Message(self.name, msg.src,
                            (UPDATE_ACK, txn, array, index))]
        return []  # unknown tags are dropped (defensive)


@dataclass
class _Transaction:
    """One in-flight ABD read or write."""

    txn: int
    op: Operation
    phase: str = "query"            # "query" -> "update" -> done
    replies: List[Tuple[Stamp, int]] = field(default_factory=list)
    acks: int = 0
    #: The value the transaction will return (reads) or echo (writes).
    result: Optional[int] = None


class AbdClient(Node):
    """Client endpoint translating register ops into quorum transactions.

    Args:
        servers: names of the replica nodes.
        on_complete: callback ``(op, value, now)`` invoked when the current
            transaction commits; the consensus driver chains the protocol
            machine from it.

    Use :meth:`begin` to start a transaction (one at a time).
    """

    def __init__(self, servers: List[str],
                 on_complete: Callable[[Operation, int, float],
                                       Iterable[Message]]) -> None:
        if not servers:
            raise ConfigurationError("need at least one server")
        self.servers = list(servers)
        self.quorum = quorum_size(len(servers))
        self.on_complete = on_complete
        self._txn_counter = 0
        self._current: Optional[_Transaction] = None
        #: Committed transactions, for reporting.
        self.committed = 0
        #: Stamp of the last transaction's value: the written stamp for
        #: writes, the returned value's stamp for reads.  Exposed for
        #: linearizability checking.
        self.last_stamp: Stamp = (0, -1)

    # -- API ---------------------------------------------------------------

    def begin(self, op: Operation) -> List[Message]:
        """Start the two-phase protocol for ``op``; returns the queries."""
        if self._current is not None:
            raise ConfigurationError(
                f"{self.name}: transaction {self._current.txn} in flight")
        self._txn_counter += 1
        self._current = _Transaction(self._txn_counter, op)
        return [Message(self.name, server,
                        (QUERY, self._txn_counter, op.array, op.index))
                for server in self.servers]

    # -- message handling --------------------------------------------------

    def on_message(self, msg: Message, now: float) -> Iterable[Message]:
        txn = self._current
        if txn is None:
            return []
        tag = msg.payload[0]
        if tag == QUERY_REPLY and txn.phase == "query":
            _, txn_id, array, index, counter, wpid, value = msg.payload
            if txn_id != txn.txn:
                return []
            txn.replies.append((((counter, wpid)), value))
            if len(txn.replies) == self.quorum:
                return self._enter_update_phase(txn)
            return []
        if tag == UPDATE_ACK and txn.phase == "update":
            _, txn_id, array, index = msg.payload
            if txn_id != txn.txn:
                return []
            txn.acks += 1
            if txn.acks == self.quorum:
                return self._commit(txn, now)
            return []
        return []

    def _enter_update_phase(self, txn: _Transaction) -> List[Message]:
        (counter, wpid), value = max(txn.replies)
        op = txn.op
        if op.kind is OpKind.WRITE:
            stamp = (counter + 1, self._writer_pid())
            payload_value = op.value
            txn.result = op.value
        else:
            # Read write-back: propagate the freshest value unchanged.
            stamp = (counter, wpid)
            payload_value = value
            txn.result = value
        self.last_stamp = stamp
        txn.phase = "update"
        return [Message(self.name, server,
                        (UPDATE, txn.txn, op.array, op.index,
                         stamp[0], stamp[1], payload_value))
                for server in self.servers]

    def _commit(self, txn: _Transaction, now: float) -> Iterable[Message]:
        self._current = None
        self.committed += 1
        return self.on_complete(txn.op, txn.result, now)  # type: ignore[arg-type]

    def _writer_pid(self) -> int:
        # Client names are "client<pid>"; extract the pid for timestamps.
        digits = "".join(ch for ch in self.name if ch.isdigit())
        return int(digits) if digits else 0
