"""Discrete-event asynchronous message-passing network.

Messages between nodes suffer i.i.d. noisy latencies drawn from an
admissible noise distribution (the message-passing analogue of the
Section 3.1 operation noise).  Nodes are reactive objects: delivering a
message to a node returns the batch of messages it sends in response.
Crashed nodes silently drop everything — the standard crash-stop model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.noise.distributions import NoiseDistribution, validate_noise


@dataclass(frozen=True)
class Message:
    """One network message.

    ``payload`` is an arbitrary (hashable not required) application value;
    the ABD layer uses small tuples.
    """

    src: str
    dst: str
    payload: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}: {self.payload}"


class Node:
    """Base class for reactive network nodes."""

    #: Unique node name, set by the network on registration.
    name: str = "?"

    def on_message(self, msg: Message, now: float) -> Iterable[Message]:
        """Handle a delivered message; return messages to send."""
        raise NotImplementedError

    def on_start(self, now: float) -> Iterable[Message]:
        """Called once when the simulation starts; return initial sends."""
        return ()


class Network:
    """The event loop: schedules deliveries under noisy latency.

    Args:
        latency: per-message delay distribution (validated against the
            model's admissibility conditions unless ``allow_degenerate``).
        rng: randomness source for latencies.
        allow_degenerate: permit constant latency (synchronous network).

    Use :meth:`add_node` to register nodes, :meth:`crash` to fail them,
    and :meth:`run` to drive the simulation until quiescence, a predicate,
    or a message budget.
    """

    def __init__(self, latency: NoiseDistribution,
                 rng: np.random.Generator,
                 allow_degenerate: bool = False) -> None:
        if not allow_degenerate:
            validate_noise(latency)
        self.latency = latency
        self.rng = rng
        self.nodes: Dict[str, Node] = {}
        self.crashed: Set[str] = set()
        self._queue: List[Tuple[float, int, Message]] = []
        self._seq = itertools.count()
        #: Total messages delivered.
        self.delivered = 0
        #: Total messages sent (including ones later dropped by crashes).
        self.sent = 0
        self.now = 0.0

    def add_node(self, name: str, node: Node) -> Node:
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already registered")
        node.name = name
        self.nodes[name] = node
        return node

    def crash(self, name: str) -> None:
        """Crash-stop a node: it stops sending and receiving."""
        if name not in self.nodes:
            raise ConfigurationError(f"unknown node {name!r}")
        self.crashed.add(name)

    def send(self, msg: Message, now: float) -> None:
        """Schedule delivery of ``msg`` after a noisy latency."""
        self.sent += 1
        if msg.src in self.crashed:
            return
        delay = float(self.latency.sample(self.rng))
        # Tiny dither forbids simultaneous deliveries (Section 3.1's
        # technical constraint, carried over to messages).
        delay += float(self.rng.uniform(0.0, 1e-12))
        heapq.heappush(self._queue, (now + delay, next(self._seq), msg))

    def _dispatch(self, batch: Iterable[Message], now: float) -> None:
        for msg in batch:
            if msg.dst not in self.nodes:
                raise SimulationError(f"message to unknown node: {msg}")
            self.send(msg, now)

    def start(self) -> None:
        """Deliver every node's initial sends."""
        for node in list(self.nodes.values()):
            if node.name not in self.crashed:
                self._dispatch(node.on_start(self.now), self.now)

    def run(self, until: Optional[Callable[[], bool]] = None,
            max_messages: int = 1_000_000) -> bool:
        """Process deliveries until the predicate holds or quiescence.

        Returns True if ``until`` became true, False on quiescence or when
        the message budget ran out (the caller distinguishes via
        :attr:`delivered`).
        """
        while self._queue:
            if until is not None and until():
                return True
            if self.delivered >= max_messages:
                return False
            time, _, msg = heapq.heappop(self._queue)
            self.now = time
            if msg.dst in self.crashed or msg.src in self.crashed:
                continue
            self.delivered += 1
            replies = self.nodes[msg.dst].on_message(msg, time)
            self._dispatch(replies, time)
        return bool(until()) if until is not None else False
