"""Columnar aggregators over :class:`~repro.sim.frame.ResultFrame`.

The aggregator vocabulary the experiment harnesses share instead of
hand-rolled ``[t.field for t in batch]`` loops: each aggregator is a
small frozen dataclass that computes directly on a frame's numpy columns
(mean / normal CI, bootstrap CI, tail probabilities), plus cross-cell
fit helpers for the Θ(log n) growth and exponential-tail claims.

Optional columns use ``NaN`` for "no value" (an undecided trial has no
``first_decision_round``).  Aggregators over those columns filter the
undecided trials and raise :class:`~repro.errors.AggregationError` —
naming the offending :class:`~repro.api.spec.TrialSpec` — when nothing
remains, instead of the silent ``TypeError``/``nan`` the legacy list
comprehensions produced on budget-exhausted configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError
from repro.analysis.stats import (
    FitResult,
    bootstrap_mean_ci,
    fit_log,
    mean_confidence_interval,
    tail_probabilities,
)
from repro.sim.frame import ResultFrame


def _values(frame: ResultFrame, column: str, where: str) -> np.ndarray:
    """A column as float64 values, with the ``where`` policy applied.

    ``where="finite"`` (the default for optional columns) drops NaN
    rows; ``where="all"`` requires every row to carry a value and raises
    otherwise.  Both raise :class:`AggregationError` when no values
    remain, naming the frame's spec.
    """
    col = np.asarray(frame.column(column), dtype=float)
    mask = np.isfinite(col)
    if where == "all" and not mask.all():
        raise AggregationError(_describe(
            frame, column,
            f"{int((~mask).sum())} of {col.size} trials have no "
            f"{column!r} value"))
    kept = col[mask]
    if kept.size == 0:
        raise AggregationError(_describe(
            frame, column,
            f"no trial produced a {column!r} value "
            f"({col.size} trials, all undecided)"))
    return kept


def _describe(frame: ResultFrame, column: str, problem: str) -> str:
    spec = getattr(frame, "spec", None)
    where = f" for spec {spec!r}" if spec is not None else ""
    return f"cannot aggregate {column!r}{where}: {problem}"


@dataclass(frozen=True)
class Mean:
    """Mean of a column over trials that carry a value."""

    column: str
    where: str = "finite"

    def __call__(self, frame: ResultFrame) -> float:
        return float(_values(frame, self.column, self.where).mean())


@dataclass(frozen=True)
class MeanCI:
    """(mean, CI half-width) via the normal approximation.

    Columnar twin of
    :func:`repro.analysis.stats.mean_confidence_interval` (identical
    output on the same values, including the ``inf`` half-width for a
    single sample).
    """

    column: str
    z: float = 1.96
    where: str = "finite"

    def __call__(self, frame: ResultFrame) -> Tuple[float, float]:
        return mean_confidence_interval(
            _values(frame, self.column, self.where), z=self.z)


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile-bootstrap CI for the mean: (mean, lo, hi).

    Preferred over :class:`MeanCI` for the heavy-tailed round counts of
    adversarial configurations; the resampling generator is passed at
    call time so sweeps stay reproducible.
    """

    column: str
    n_boot: int = 2000
    level: float = 0.95
    where: str = "finite"

    def __call__(self, frame: ResultFrame,
                 rng: np.random.Generator) -> Tuple[float, float, float]:
        return bootstrap_mean_ci(_values(frame, self.column, self.where),
                                 rng, n_boot=self.n_boot, level=self.level)


@dataclass(frozen=True)
class TailProbabilities:
    """Empirical P[X > k] for each threshold k, columnar."""

    column: str
    ks: Tuple[float, ...]
    where: str = "finite"

    def __call__(self, frame: ResultFrame) -> np.ndarray:
        return tail_probabilities(_values(frame, self.column, self.where),
                                  self.ks)


def decided_count(frame: ResultFrame) -> int:
    """Number of trials in which at least one process decided."""
    return int(frame.decided.sum())


def agreement_rate(frame: ResultFrame) -> float:
    """Fraction of trials with no two differing decisions."""
    if len(frame) == 0:
        raise AggregationError("cannot compute agreement over zero trials")
    return float(frame.agreed.mean())


def mean_halted(frame: ResultFrame) -> float:
    """Mean number of halted processes per trial."""
    if len(frame) == 0:
        raise AggregationError("cannot compute mean_halted over zero trials")
    return float(frame.column("n_halted").mean())


# -- streaming (running) aggregates ---------------------------------------

#: Numeric columns folded into the streaming aggregates the serve
#: executor maintains per cell (NaN rows are skipped, exactly like the
#: ``where="finite"`` policy of the one-shot aggregators above).
STREAM_COLUMNS = (
    "first_decision_round",
    "first_decision_ops",
    "last_decision_round",
    "total_ops",
    "max_round",
    "n_halted",
)


@dataclass
class RunningColumnStat:
    """Sufficient statistics for one column, foldable chunk by chunk.

    Carries (count, sum, sum of squares, min, max) over the *finite*
    values seen so far — enough to answer :class:`Mean` and
    :class:`MeanCI` questions mid-run without retaining any chunk.  The
    mean is exactly the full-column mean up to float summation order;
    the CI half-width uses the same normal approximation as
    :func:`repro.analysis.stats.mean_confidence_interval` (``inf`` for a
    single sample), computed from the running moments.
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def fold(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        kept = values[np.isfinite(values)]
        if kept.size == 0:
            return
        self.count += int(kept.size)
        self.total += float(kept.sum())
        self.total_sq += float(np.square(kept).sum())
        self.minimum = min(self.minimum, float(kept.min()))
        self.maximum = max(self.maximum, float(kept.max()))

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise AggregationError(
                "no finite values folded yet (all trials undecided so far)")
        return self.total / self.count

    def ci_half(self, z: float = 1.96) -> float:
        mean = self.mean  # raises on empty
        if self.count == 1:
            return float("inf")
        var = max(0.0, (self.total_sq - self.count * mean * mean)
                  / (self.count - 1))
        return z * (var ** 0.5) / (self.count ** 0.5)

    def merge(self, other: "RunningColumnStat") -> None:
        """Fold another stat in (sufficient statistics are additive)."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "total_sq": self.total_sq, "min": self.minimum,
                "max": self.maximum}

    @classmethod
    def from_dict(cls, data: dict) -> "RunningColumnStat":
        return cls(count=int(data["count"]), total=float(data["total"]),
                   total_sq=float(data["total_sq"]),
                   minimum=float(data["min"]), maximum=float(data["max"]))


class RunningCellAggregate:
    """Streaming per-cell aggregates over an unbounded stream of chunks.

    The serve executor folds each finished chunk's
    :class:`~repro.sim.frame.ResultFrame` columns in
    (:meth:`fold_frame`) and persists the result with the job state, so
    a million-trial cell is queryable mid-run — mean/CI per stream
    column, decide/agreement counts — while peak memory stays O(chunk).
    JSON round-trips (:meth:`to_dict`/:meth:`from_dict`) keep resumes
    exact: a resumed job folds only the chunks the crashed run had not
    recorded.
    """

    def __init__(self) -> None:
        self.trials = 0
        self.decided = 0
        self.agreed = 0
        self.columns = {name: RunningColumnStat() for name in STREAM_COLUMNS}

    def fold_frame(self, frame: ResultFrame) -> None:
        self.trials += len(frame)
        self.decided += int(frame.decided.sum())
        self.agreed += int(frame.agreed.sum())
        for name, stat in self.columns.items():
            stat.fold(np.asarray(frame.column(name), dtype=float))

    def merge(self, other: "RunningCellAggregate") -> None:
        """Fold another aggregate in (e.g. a worker's chunk summary)."""
        self.trials += other.trials
        self.decided += other.decided
        self.agreed += other.agreed
        for name, stat in self.columns.items():
            stat.merge(other.columns[name])

    def table(self) -> dict:
        """The queryable summary: counts plus per-column mean/CI."""
        out = {
            "trials": self.trials,
            "decided": self.decided,
            "agreement_rate": (self.agreed / self.trials
                               if self.trials else None),
        }
        for name, stat in self.columns.items():
            if stat.count:
                out[name] = {"mean": stat.mean,
                             "ci95_half": stat.ci_half(),
                             "count": stat.count,
                             "min": stat.minimum, "max": stat.maximum}
            else:
                out[name] = None
        return out

    def to_dict(self) -> dict:
        return {"trials": self.trials, "decided": self.decided,
                "agreed": self.agreed,
                "columns": {name: stat.to_dict()
                            for name, stat in self.columns.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "RunningCellAggregate":
        agg = cls()
        agg.trials = int(data["trials"])
        agg.decided = int(data["decided"])
        agg.agreed = int(data["agreed"])
        for name, stat in data["columns"].items():
            if name in agg.columns:
                agg.columns[name] = RunningColumnStat.from_dict(stat)
        return agg


def fit_log_over_cells(xs: Sequence[float], means: Sequence[float],
                       min_x: float = 2) -> FitResult:
    """Fit ``mean = a*ln(x) + b`` across sweep cells, dropping ``x < min_x``.

    The Theorem-12 cross-cell fit: ``ln 1 = 0`` gives the intercept no
    leverage (and the n=1 point is deterministic anyway), so tiny x
    values are excluded exactly as the experiment harnesses always did.
    """
    kept = [(x, y) for x, y in zip(xs, means) if x >= min_x]
    return fit_log([x for x, _ in kept], [y for _, y in kept])
