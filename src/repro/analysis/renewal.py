"""The Section-6 renewal-race abstraction, simulated directly.

The paper reduces lean-consensus termination to a clean probabilistic
statement: ``n`` delayed renewal processes, with i.i.d. per-round increments
``X_ij`` plus bounded adversarial delays, race until some process finishes
round ``r + c`` before any rival finishes round ``r`` (a *lead of c*).
Theorem 10 / Corollary 11 show the race ends in O(log n) rounds in
expectation, with an exponential tail.

This module simulates exactly that abstraction — no consensus protocol, no
shared memory — so the probabilistic engine of the proof can be validated
independently of the algorithm, and provides exact computations for the
combinatorial lemmas:

* :func:`lemma5_bound` / :func:`exactly_one_probability` — Lemma 5: if
  independent events have none-occur probability x, exactly-one occurs with
  probability at least -x·ln(x).
* :func:`lemma6_critical_time` — Lemma 6: the critical time t0 at which
  with probability >= ~0.23 exactly one racer has finished.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.noise.distributions import NoiseDistribution


def exactly_one_probability(qs: Sequence[float]) -> float:
    """Exact P[exactly one of independent events A_i occurs].

    ``qs[i]`` is the probability that A_i does *not* occur.  This is the
    left-hand side of Lemma 5, computed exactly:
    ``(prod q_i) * sum (1 - q_i) / q_i``.
    """
    qs = list(qs)
    if any(not 0.0 <= q <= 1.0 for q in qs):
        raise ConfigurationError("probabilities must lie in [0, 1]")
    if any(q == 0.0 for q in qs):
        # Some event certainly occurs; exactly-one requires all others off.
        total = 0.0
        for i, qi in enumerate(qs):
            if qi == 0.0:
                others = 1.0
                for j, qj in enumerate(qs):
                    if j != i:
                        others *= qj
                total += others
            # events with qi > 0 contribute 0 here because a q=0 event is on
        return total if qs.count(0.0) == 1 else 0.0
    prod = math.prod(qs)
    return prod * sum((1.0 - q) / q for q in qs)


def lemma5_bound(x: float) -> float:
    """Lemma 5's lower bound -x·ln(x) on the exactly-one probability."""
    if not 0.0 < x <= 1.0:
        raise ConfigurationError(f"x must be in (0, 1], got {x}")
    return -x * math.log(x)


def lemma6_critical_time(samples: np.ndarray) -> Optional[float]:
    """Empirical Lemma-6 critical time from finish-time samples.

    Args:
        samples: array of shape (trials, n) — per-trial finish times of the
            n racers at the target round.

    Returns:
        The smallest time t (over a grid of observed values) at which the
        empirical probability that *no* racer has finished by t drops to
        ``exp(-1)`` or below — the paper's t0 — or None if it never does.
    """
    trials, _n = samples.shape
    # No racer finished by t iff the per-trial minimum exceeds t, so the
    # none-finished probability is the survival function of the minima and
    # t0 is just their (1 - e^-1) quantile, found on the observed grid.
    mins = np.sort(samples.min(axis=1))
    counts = np.arange(1, trials + 1)          # #trials with min <= grid[k]
    none_prob = 1.0 - counts / trials
    below = np.nonzero(none_prob <= math.exp(-1))[0]
    if below.size == 0:
        return None
    return float(mins[below[0]])


@dataclass
class RaceResult:
    """Outcome of one renewal race."""

    #: Round at which the winner achieved the lead (the paper's R).
    winning_round: int
    #: Index of the winning racer, or None if all racers died.
    winner: Optional[int]
    #: True when the race ended because every racer halted.
    all_dead: bool


def simulate_race_rounds(dist: NoiseDistribution, n: int, c: int,
                         rng: np.random.Generator,
                         deltas: Optional[np.ndarray] = None,
                         starts: Optional[np.ndarray] = None,
                         h: float = 0.0,
                         max_rounds: int = 100_000,
                         block: int = 64) -> RaceResult:
    """Race ``n`` delayed renewal processes until one leads by ``c`` rounds.

    Process i finishes round j at
    ``S'_ij = start_i + sum_{k<=j} (delta_ik + X_ik + H_ik)`` with
    ``H_ik = inf`` w.p. ``h`` (halting).  The race ends at the first round
    ``R`` such that some racer finishes round ``R + c`` before every rival
    finishes round ``R`` (Corollary 11's stopping rule), or when every racer
    has halted.

    Finish times are generated lazily in blocks of ``block`` rounds so the
    O(log n) typical case stays cheap.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if c < 1:
        raise ConfigurationError(f"c must be >= 1, got {c}")
    if n == 1:
        return RaceResult(winning_round=1, winner=0, all_dead=False)

    starts_arr = np.zeros(n) if starts is None else np.asarray(starts, float)
    finish = starts_arr[:, None] + np.zeros((n, 0))
    rounds_have = 0
    dead_at = np.full(n, np.inf)  # first infinite round per racer
    if h > 0:
        # Round at which each racer halts (geometric); inf beyond it.
        dead_at = rng.geometric(h, size=n).astype(float)

    def extend(upto: int) -> None:
        nonlocal finish, rounds_have
        while rounds_have < upto:
            add = max(block, upto - rounds_have)
            incs = dist.sample_array(rng, (n, add))
            if deltas is not None:
                lo = rounds_have
                hi = min(rounds_have + add, deltas.shape[1])
                if hi > lo:
                    incs[:, : hi - lo] += deltas[:, lo:hi]
            base = finish[:, -1] if rounds_have else starts_arr
            new = base[:, None] + np.cumsum(incs, axis=1)
            finish = np.concatenate([finish, new], axis=1)
            rounds_have += add

    for r in range(1, max_rounds + 1):
        extend(r + c)
        finish_r = finish[:, r - 1].copy()
        finish_rc = finish[:, r + c - 1].copy()
        finish_r[dead_at <= r] = np.inf
        finish_rc[dead_at <= r + c] = np.inf
        if np.isinf(finish_rc).all():
            return RaceResult(winning_round=r, winner=None, all_dead=True)
        lead = np.argmin(finish_rc)
        rivals = np.delete(finish_r, lead)
        if finish_rc[lead] < rivals.min():
            return RaceResult(winning_round=r, winner=int(lead),
                              all_dead=False)
    raise ConfigurationError(
        f"race did not end within {max_rounds} rounds; "
        "is the distribution admissible?"
    )


def race_until_lead(dist: NoiseDistribution, n: int, c: int, trials: int,
                    rng: np.random.Generator, h: float = 0.0) -> np.ndarray:
    """Winning rounds of ``trials`` independent races (Corollary 11's R)."""
    out = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        out[t] = simulate_race_rounds(dist, n, c, rng, h=h).winning_round
    return out
