"""Analysis substrate: renewal-race theory (Section 6) and statistics.

* :mod:`repro.analysis.renewal` — the paper's termination argument is a
  race between delayed renewal processes; this module simulates that race
  directly (independently of the consensus algorithm) and computes the
  Lemma-5/Lemma-6 quantities exactly, validating Theorem 10 and
  Corollary 11 in isolation.
* :mod:`repro.analysis.stats` — mean/CI estimation, a·ln(n)+b fits with R²,
  and exponential-tail fits used by the experiment harnesses.
"""

from repro.analysis.renewal import (
    RaceResult,
    exactly_one_probability,
    lemma5_bound,
    lemma6_critical_time,
    race_until_lead,
    simulate_race_rounds,
)
from repro.analysis.stats import (
    FitResult,
    bootstrap_mean_ci,
    fit_exponential_tail,
    fit_log,
    mean_confidence_interval,
)

__all__ = [
    "FitResult",
    "RaceResult",
    "bootstrap_mean_ci",
    "exactly_one_probability",
    "fit_exponential_tail",
    "fit_log",
    "lemma5_bound",
    "lemma6_critical_time",
    "mean_confidence_interval",
    "race_until_lead",
    "simulate_race_rounds",
]
