"""Minimal dependency-free SVG line plots for experiment results.

Matplotlib is unavailable in the reproduction environment, so this module
renders the handful of plot shapes the experiments need (log-x line
series, Figure-1 style) directly as SVG text.  The output is deliberately
simple: axes, tick labels, one polyline + point markers per series, and a
legend.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: A muted qualitative palette (Okabe-Ito), readable on white.
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#000000", "#F0E442")


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def line_plot_svg(series: Dict[str, Sequence[Tuple[float, float]]],
                  title: str = "",
                  x_label: str = "n",
                  y_label: str = "round",
                  log_x: bool = True,
                  width: int = 640,
                  height: int = 420) -> str:
    """Render named (x, y) series as an SVG document string.

    Args:
        series: name -> sequence of (x, y) points (x > 0 when ``log_x``).
        log_x: use a log10 x-axis (the Figure-1 layout).
    """
    if not series or all(not pts for pts in series.values()):
        raise ConfigurationError("nothing to plot")
    margin_l, margin_r, margin_t, margin_b = 64, 16, 36, 44
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if log_x and min(xs) <= 0:
        raise ConfigurationError("log-x plot requires positive x values")

    def tx(x: float) -> float:
        lo, hi = (math.log10(min(xs)), math.log10(max(xs))) if log_x \
            else (min(xs), max(xs))
        v = math.log10(x) if log_x else x
        span = (hi - lo) or 1.0
        return margin_l + (v - lo) / span * plot_w

    y_lo, y_hi = min(ys), max(ys)
    y_span = (y_hi - y_lo) or 1.0

    def ty(y: float) -> float:
        return margin_t + (y_hi - y) / y_span * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{width / 2}" y="20" text-anchor="middle" '
                     f'font-size="14">{_escape(title)}</text>')

    # Axes.
    x0, y0 = margin_l, margin_t + plot_h
    parts.append(f'<line x1="{x0}" y1="{margin_t}" x2="{x0}" y2="{y0}" '
                 'stroke="black"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{margin_l + plot_w}" '
                 f'y2="{y0}" stroke="black"/>')
    parts.append(f'<text x="{margin_l + plot_w / 2}" y="{height - 8}" '
                 f'text-anchor="middle">{_escape(x_label)}</text>')
    parts.append(f'<text x="14" y="{margin_t + plot_h / 2}" '
                 f'text-anchor="middle" transform="rotate(-90 14 '
                 f'{margin_t + plot_h / 2})">{_escape(y_label)}</text>')

    # X ticks: decades for log, 5 even ticks otherwise.
    if log_x:
        lo_dec = math.floor(math.log10(min(xs)))
        hi_dec = math.ceil(math.log10(max(xs)))
        tick_xs = [10.0 ** d for d in range(lo_dec, hi_dec + 1)]
    else:
        tick_xs = [min(xs) + k * (max(xs) - min(xs)) / 4 for k in range(5)]
    for tick in tick_xs:
        px = tx(tick)
        parts.append(f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" '
                     f'y2="{y0 + 4}" stroke="black"/>')
        label = f"{tick:g}"
        parts.append(f'<text x="{px:.1f}" y="{y0 + 18}" '
                     f'text-anchor="middle">{label}</text>')

    # Y ticks: 5 even ticks.
    for k in range(5):
        val = y_lo + k * y_span / 4
        py = ty(val)
        parts.append(f'<line x1="{x0 - 4}" y1="{py:.1f}" x2="{x0}" '
                     f'y2="{py:.1f}" stroke="black"/>')
        parts.append(f'<text x="{x0 - 8}" y="{py + 4:.1f}" '
                     f'text-anchor="end">{val:.1f}</text>')

    # Series.
    for idx, (name, pts) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        coords = " ".join(f"{tx(x):.1f},{ty(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="1.5"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{tx(x):.1f}" cy="{ty(y):.1f}" '
                         f'r="3" fill="{color}"/>')
        ly = margin_t + 14 * idx + 4
        lx = margin_l + plot_w - 150
        parts.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}">'
                     f'{_escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def figure1_svg(result) -> str:
    """Render a :class:`repro.experiments.figure1.Figure1Result` as SVG."""
    series = {
        name: [(p.n, p.mean_round) for p in points]
        for name, points in result.series.items()
    }
    return line_plot_svg(
        series,
        title="Figure 1 — mean round of first termination "
              f"({result.trials} trials/point)",
        x_label="number of processes (log)",
        y_label="mean round of first termination",
        log_x=True)
