"""Statistics helpers for the experiment harnesses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class FitResult:
    """A least-squares fit y ~ a·f(x) + b.

    Attributes:
        a: slope coefficient.
        b: intercept.
        r2: coefficient of determination on the fitted points.
        model: human-readable description of f.
    """

    a: float
    b: float
    r2: float
    model: str

    def predict(self, x: float) -> float:
        if self.model == "a*ln(n)+b":
            return self.a * math.log(x) + self.b
        if self.model == "a*k+b (log-tail)":
            return self.a * x + self.b
        raise ConfigurationError(f"unknown model {self.model!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.model}: a={self.a:.4f} b={self.b:.4f} R^2={self.r2:.4f}"


def _least_squares(xs: np.ndarray, ys: np.ndarray) -> Tuple[float, float, float]:
    if xs.size != ys.size or xs.size < 2:
        raise ConfigurationError("need >= 2 matching points to fit")
    a, b = np.polyfit(xs, ys, 1)
    pred = a * xs + b
    ss_res = float(np.sum((ys - pred) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(a), float(b), r2


def fit_log(ns: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y = a·ln(n) + b — the Theorem-12 Θ(log n) shape."""
    xs = np.log(np.asarray(ns, dtype=float))
    a, b, r2 = _least_squares(xs, np.asarray(ys, dtype=float))
    return FitResult(a, b, r2, "a*ln(n)+b")


def fit_exponential_tail(ks: Sequence[float],
                         tail_probs: Sequence[float]) -> FitResult:
    """Fit ln P[R > k] = a·k + b — Corollary 11's exponential tail.

    Zero-probability entries are dropped (they carry no log information).
    A negative ``a`` confirms the exponential decay.
    """
    ks_arr = np.asarray(ks, dtype=float)
    ps = np.asarray(tail_probs, dtype=float)
    keep = ps > 0
    a, b, r2 = _least_squares(ks_arr[keep], np.log(ps[keep]))
    return FitResult(a, b, r2, "a*k+b (log-tail)")


def mean_confidence_interval(xs: Sequence[float],
                             z: float = 1.96) -> Tuple[float, float]:
    """(mean, half-width) of a normal-approximation confidence interval."""
    arr = np.asarray(xs, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("no samples")
    if arr.size == 1:
        return float(arr[0]), math.inf
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return float(arr.mean()), half


def bootstrap_mean_ci(xs: Sequence[float], rng: np.random.Generator,
                      n_boot: int = 2000,
                      level: float = 0.95) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for the mean: (mean, lo, hi).

    Preferred over the normal approximation for the heavy-tailed round
    counts produced by adversarial configurations.
    """
    arr = np.asarray(xs, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("no samples")
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(arr.mean()), float(lo), float(hi)


def tail_probabilities(samples: Sequence[float],
                       ks: Sequence[float]) -> np.ndarray:
    """Empirical P[X > k] for each threshold k."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("no samples")
    return np.array([float(np.mean(arr > k)) for k in ks])
