"""Timing-based mutual exclusion under noisy scheduling (Section 10).

The paper's closing discussion points at Gafni and Mitzenmacher's analysis
of timing-based mutual exclusion with random timing, and remarks that
algorithms designed for unknown-delay models "should continue to work in
the noisy scheduling model, perhaps with some constraint on the noise
distribution to exclude random delays with unbounded expectations."

This package makes that remark measurable.  It implements Fischer's
classic timing-based mutex — correct when the chosen pause ``d`` exceeds
the maximum time an operation can linger — and runs it under admissible
noise distributions:

* with *bounded* noise (e.g. uniform(0, 2)), a pause above the bound makes
  violations impossible, and the simulation confirms zero violations;
* with *unbounded* noise (e.g. exponential), no finite pause is safe; the
  violation probability decays with ``d`` but never reaches zero — the
  constraint the paper anticipated.
"""

from repro.mutex.fischer import FischerResult, simulate_fischer

__all__ = ["FischerResult", "simulate_fischer"]
