"""Fischer's timing-based mutual exclusion, simulated under noisy timing.

The protocol (per process, for each critical-section entry):

1. read ``lock`` until it is 0 (spin);
2. write ``lock := pid + 1``;
3. pause for a fixed time ``d`` (the timing assumption);
4. read ``lock``; if it still holds this process's claim, enter the
   critical section, else go back to 1.
5. on exit, write ``lock := 0``.

Safety argument (classic): if every operation completes within time B of
being issued, then after the pause ``d > B`` any competing claim written
before ours has either been observed (we lose) or overwritten ours (we
lose) — two processes can never both see their own claim.  Under the noisy
scheduling model each operation's duration is ``>= the noise draw``, so B
is the *essential supremum* of the noise: finite for bounded
distributions, infinite for exponential-like ones.  The simulation
measures exactly this dichotomy.

The engine here is a small dedicated event loop (the pause step is a pure
time increment with no memory operation, which the consensus engines have
no reason to support).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.noise.distributions import NoiseDistribution

# Per-process protocol states.
_SPIN = "spin"          # step 1: read lock, want 0
_CLAIM = "claim"        # step 2: write pid+1
_PAUSE = "pause"        # step 3: timed wait
_CHECK = "check"        # step 4: read lock, want own claim
_IN_CS = "in-cs"        # critical section (fixed op count)
_RELEASE = "release"    # step 5: write 0


@dataclass
class FischerResult:
    """Outcome of one Fischer-mutex simulation.

    Attributes:
        entries: critical-section entries completed across processes.
        violations: number of times a process entered the critical section
            while another was inside — the mutual-exclusion failures.
        max_concurrent: worst-case simultaneous occupancy observed.
        mean_wait: mean time from starting to compete to entering the
            critical section.
        total_ops: shared-memory operations executed.
        sim_time: simulation clock at the end.
        entries_by_pid: per-process entry counts (fairness profile).
    """

    entries: int = 0
    violations: int = 0
    max_concurrent: int = 0
    mean_wait: float = 0.0
    total_ops: int = 0
    sim_time: float = 0.0
    entries_by_pid: Dict[int, int] = field(default_factory=dict)


def simulate_fischer(n: int, noise: NoiseDistribution, pause: float,
                     rng: np.random.Generator,
                     target_entries: int = 50,
                     cs_ops: int = 2,
                     max_ops: int = 500_000) -> FischerResult:
    """Run Fischer's mutex until ``target_entries`` critical sections.

    Args:
        n: number of competing processes.
        noise: per-operation duration distribution (admissibility is the
            caller's concern; degenerate distributions are fine here —
            this is not a consensus liveness experiment).
        pause: the timing parameter d of step 3.
        rng: randomness source.
        target_entries: stop after this many completed critical sections.
        cs_ops: operations performed inside the critical section.
        max_ops: hard budget (guards pathological parameter choices).
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if pause < 0:
        raise ConfigurationError(f"pause must be >= 0, got {pause}")
    if target_entries < 1:
        raise ConfigurationError("target_entries must be >= 1")

    lock = 0
    state = {pid: _SPIN for pid in range(n)}
    cs_remaining = {pid: 0 for pid in range(n)}
    compete_since: Dict[int, float] = {}
    in_cs: set = set()

    result = FischerResult(entries_by_pid={pid: 0 for pid in range(n)})
    waits: List[float] = []

    heap: List = []
    counter = itertools.count()
    for pid in range(n):
        first = float(noise.sample(rng)) + float(rng.uniform(0.0, 1e-12))
        heapq.heappush(heap, (first, next(counter), pid))
        compete_since[pid] = 0.0

    now = 0.0
    while heap and result.entries < target_entries \
            and result.total_ops < max_ops:
        now, _, pid = heapq.heappop(heap)
        phase = state[pid]
        delay: Optional[float] = None  # None means "one noisy op"

        if phase == _SPIN:
            result.total_ops += 1
            if lock == 0:
                state[pid] = _CLAIM
        elif phase == _CLAIM:
            result.total_ops += 1
            lock = pid + 1
            state[pid] = _PAUSE
        elif phase == _PAUSE:
            # The pause itself consumed time when scheduled below; now
            # perform the check read next.
            state[pid] = _CHECK
            delay = 0.0
        elif phase == _CHECK:
            result.total_ops += 1
            if lock == pid + 1:
                state[pid] = _IN_CS
                cs_remaining[pid] = cs_ops
                in_cs.add(pid)
                if len(in_cs) > 1:
                    result.violations += 1
                result.max_concurrent = max(result.max_concurrent,
                                            len(in_cs))
                waits.append(now - compete_since[pid])
            else:
                state[pid] = _SPIN
        elif phase == _IN_CS:
            result.total_ops += 1
            cs_remaining[pid] -= 1
            if cs_remaining[pid] <= 0:
                state[pid] = _RELEASE
        else:  # _RELEASE
            result.total_ops += 1
            if lock == pid + 1:
                lock = 0
            in_cs.discard(pid)
            result.entries += 1
            result.entries_by_pid[pid] += 1
            state[pid] = _SPIN
            compete_since[pid] = now

        if result.entries >= target_entries:
            break
        if delay is None:
            inc = float(noise.sample(rng))
        else:
            inc = delay
        if state[pid] == _PAUSE:
            inc += pause
        inc += float(rng.uniform(0.0, 1e-12))
        heapq.heappush(heap, (now + inc, next(counter), pid))

    result.sim_time = now
    result.mean_wait = float(np.mean(waits)) if waits else 0.0
    return result
