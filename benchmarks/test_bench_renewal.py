"""EXP-R10 benchmark: Theorem 10 / Corollary 11 — the renewal race.

Expected shape: E[R] fits a·ln(n)+b with high R²; P[R > k] decays
log-linearly; the unique-leader probability at the Lemma-6 critical time
clears the paper's ~0.23 guarantee.
"""

import pytest

from repro.experiments import renewal_race


@pytest.mark.benchmark(group="renewal-race")
def test_renewal_race_scaling(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: renewal_race.run(ns=(2, 4, 16, 64, 256), trials=200,
                                 seed=2000),
        rounds=1, iterations=1)
    save_report("renewal_r10", renewal_race.format_result(result))

    assert result.fit.a > 0          # grows with n
    assert result.fit.r2 > 0.9       # and logarithmically so
    assert result.tail_fit is not None
    assert result.tail_fit.a < 0     # exponential tail
    # Lemma 6's unique-leader guarantee (>= (1 - 1/e)/e ~ 0.2325).
    assert result.unique_leader_prob >= result.unique_leader_bound - 0.05


@pytest.mark.benchmark(group="renewal-race")
def test_single_race_n64(benchmark):
    from repro._rng import make_rng
    from repro.analysis.renewal import simulate_race_rounds
    from repro.noise import SumOf, Uniform

    out = benchmark(
        lambda: simulate_race_rounds(SumOf(Uniform(0.0, 2.0), 4), n=64, c=2,
                                     rng=make_rng(9)))
    assert out.winner is not None
