"""EXP-T13 benchmark: Theorem 13 — the Ω(log n) lower-bound construction.

Expected shape: under the two-point {1, 2} distribution the mean
termination round grows with n (log-shaped), and the probability that each
team has an all-fast runner tracks (1 - (1 - 1/n)^(n/2))² → ~0.155.
"""

import pytest

from repro.experiments import lower_bound


@pytest.mark.benchmark(group="lower-bound")
def test_lower_bound_growth(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: lower_bound.run(ns=(4, 16, 64, 256, 1024), trials=80,
                                seed=2000),
        rounds=1, iterations=1)
    save_report("lower_bound_t13", lower_bound.format_result(result))

    # Growth: the largest grid point needs more rounds than the smallest.
    assert result.mean_first[1024] > result.mean_first[4]
    # The two-fast-runners event probability matches the analytic value.
    for n in (64, 256, 1024):
        assert result.fast_pair_prob[n] == pytest.approx(
            result.fast_pair_analytic[n], abs=0.08)


@pytest.mark.benchmark(group="lower-bound")
def test_lower_bound_single_point(benchmark):
    from repro.sim.runner import run_noisy_trial

    result = benchmark(
        lambda: run_noisy_trial(256, lower_bound.LOWER_BOUND_NOISE, seed=3,
                                stop_after_first_decision=True))
    assert result.first_decision_round is not None
