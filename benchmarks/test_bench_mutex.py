"""EXP-MUTEX benchmark: Fischer's timing-based mutex under noisy timing.

Expected shape (the Section-10 remark, quantified): with bounded noise the
violation rate drops to exactly zero once the pause d clears the noise
bound; with unbounded (exponential) noise the rate decays in d but a small
pause still violates — timing assumptions need the "no unbounded delays"
constraint the paper anticipated.
"""

import pytest

from repro.experiments import mutual_exclusion


@pytest.mark.benchmark(group="mutex")
def test_mutex_pause_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: mutual_exclusion.run(n=4, pauses=(0.25, 1.0, 2.5, 5.0),
                                     entries_per_cell=400, seed=2000),
        rounds=1, iterations=1)
    save_report("mutex", mutual_exclusion.format_result(result))

    rows = {(r.noise, r.pause): r for r in result.rows}
    # Bounded noise: unsafe below the bound, exactly safe above it.
    assert rows[("uniform [0,2]", 0.25)].violations > 0
    assert rows[("uniform [0,2]", 2.5)].violations == 0
    assert rows[("uniform [0,2]", 5.0)].violations == 0
    # Unbounded noise: decaying but present at small pauses.
    assert rows[("exponential(1)", 0.25)].violations > 0
    exp_rates = [rows[("exponential(1)", p)].violation_rate
                 for p in (0.25, 1.0, 2.5, 5.0)]
    assert exp_rates == sorted(exp_rates, reverse=True)
    # Safety costs throughput: waits grow with the pause.
    assert rows[("uniform [0,2]", 5.0)].mean_wait > \
        rows[("uniform [0,2]", 1.0)].mean_wait


@pytest.mark.benchmark(group="mutex")
def test_mutex_single_run_cost(benchmark):
    from repro._rng import make_rng
    from repro.mutex import simulate_fischer
    from repro.noise import Uniform

    result = benchmark(
        lambda: simulate_fischer(4, Uniform(0.0, 2.0), pause=2.5,
                                 rng=make_rng(1), target_entries=100))
    assert result.violations == 0
