"""EXP-ABL benchmark: the design ablations of Sections 4 and 6.

Expected shapes:

* ABL1 — the "optimized" variant terminates no faster (typically slower in
  rounds) than the canonical protocol, despite executing fewer operations:
  the paper's argument for keeping the "superfluous" operations.
* ABL3 — the conservative (lag 2) variant pays about one extra round.
* ABL2a — shrinking the noise spread slows termination dramatically (the
  Θ(log n) constant depends on the distribution).
* ABL2b — oblivious adversary delays within a bound M change constants,
  not the shape.
"""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablations")
def test_ablation_suite(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: ablations.run(n=64, trials=120, seed=2000),
        rounds=1, iterations=1)
    save_report("ablations", ablations.format_result(result))

    rows = {r.protocol: r for r in result.protocols}
    # ABL1: eliding ops helps laggards, so the optimized variant needs at
    # least as many rounds on average (allow a small sampling margin).
    assert rows["optimized"].mean_last_round >= \
        rows["lean"].mean_last_round - 0.15
    # ...while executing strictly fewer operations in total.
    assert rows["optimized"].mean_total_ops < rows["lean"].mean_total_ops
    # ABL3: the conservative variant pays roughly one extra round.
    assert rows["conservative"].mean_last_round > rows["lean"].mean_last_round
    # ABL2a: smaller sigma = slower termination, monotonically.
    firsts = [r.mean_first_round for r in result.sigmas]
    assert firsts == sorted(firsts, reverse=True)


@pytest.mark.benchmark(group="ablations")
def test_optimized_trial_cost(benchmark):
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trial

    result = benchmark(
        lambda: run_noisy_trial(64, Exponential(1.0), seed=7,
                                protocol="optimized", engine="event"))
    assert result.agreed
