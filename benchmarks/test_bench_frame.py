"""Columnar frame pipeline vs legacy list path, Figure-1 shaped.

The workload is the left edge of the paper's Figure-1 grid — exponential
interarrival noise, dithered equal starts, half-and-half inputs, stop at
the first decision — at the paper's per-point trial count (10,000),
swept over small n on the vectorized engine.  Small n is exactly where
the legacy list path drowns in per-trial machinery (4 RNG stream
objects, scheduler/delta objects, a per-process presample loop, and a
``TrialResult`` + dicts per trial), and where the frame pipeline's
batched seeding + inline presample + columnar sink pay off.

Two properties, asserted at different strengths (mirroring
``test_bench_fast.py``):

* **Identity** — unconditional: the sweep's frames reconstruct the exact
  result list of the legacy loop, cell by cell.
* **Throughput** — gated on wall-clock sanity: the frame path must be at
  least 2x the legacy list path's trials/sec, asserted only when the
  list path ran long enough to time stably.

Metrics are also emitted to ``benchmarks/results/BENCH_results.json``
(uploaded as a CI artifact) so the performance trajectory is recorded
run over run.
"""

import json
import pathlib
import time

import pytest

from repro._rng import make_rng
from repro.api import (
    BatchRunner,
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
)

#: The left edge of the Figure-1 grid, at the paper's trial count.
NS = (1, 10)
TRIALS = 10_000

SWEEP = SweepSpec(
    base=TrialSpec(n=1, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)),
        engine="fast", stop_after_first_decision=True),
    axes=(SweepAxis("n", NS),),
    trials=TRIALS)

#: Only assert the ratio when the list path took at least this long.
MIN_SANE_LIST_SECONDS = 1.0

MIN_SPEEDUP = 2.0

RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_results.json"


def _legacy_list_sweep(seed):
    """The pre-frame experiment pattern: per-cell BatchRunner.run loops."""
    root = make_rng(seed)
    runner = BatchRunner()
    out = []
    for cell in SWEEP.cells():
        out.append(runner.run(cell.spec, SWEEP.trials, seed=root))
    return out


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_frame_sweep_throughput_vs_list_path(save_report):
    # Warm both paths (imports, allocator, numpy dispatch).
    warm = SweepSpec(base=SWEEP.base, axes=SWEEP.axes, trials=50)
    run_sweep(warm, seed=1)

    lists, list_s = _timed(lambda: _legacy_list_sweep(2000))
    frames, frame_s = _timed(lambda: run_sweep(SWEEP, seed=2000))

    # Identity: the columnar sweep reconstructs the legacy lists exactly.
    for batch, (cell, frame) in zip(lists, frames):
        assert frame.to_trial_results() == batch, cell.coords

    total = len(NS) * TRIALS
    list_rate = total / max(list_s, 1e-9)
    frame_rate = total / max(frame_s, 1e-9)
    speedup = list_s / max(frame_s, 1e-9)
    sane = list_s >= MIN_SANE_LIST_SECONDS
    verdict = (f"asserted >= {MIN_SPEEDUP:.1f}x" if sane
               else "not asserted: list path finished too fast for a "
                    "stable measurement")

    payload = {
        "frame_vs_list": {
            "workload": ("figure1-shaped sweep: exponential(1), dithered "
                         "starts, stop at first decision, engine=fast"),
            "ns": list(NS),
            "trials_per_point": TRIALS,
            "list_seconds": round(list_s, 3),
            "frame_seconds": round(frame_s, 3),
            "list_trials_per_sec": round(list_rate, 1),
            "frame_trials_per_sec": round(frame_rate, 1),
            "speedup": round(speedup, 2),
            "asserted": bool(sane),
            "min_speedup": MIN_SPEEDUP,
        }
    }
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    save_report("frame_speedup", "\n".join([
        f"figure1-shaped sweep, ns={list(NS)}, {TRIALS} trials/point, "
        "engine=fast",
        f"legacy list path: {list_s:.3f}s ({list_rate:,.0f} trials/s)",
        f"columnar frame path: {frame_s:.3f}s ({frame_rate:,.0f} trials/s)",
        f"speedup: {speedup:.2f}x ({verdict})",
    ]))

    if not sane:
        pytest.skip(f"list path finished in {list_s:.3f}s "
                    f"< {MIN_SANE_LIST_SECONDS}s; timing too noisy to "
                    "assert a ratio")
    assert speedup >= MIN_SPEEDUP, (
        f"frame path only {speedup:.2f}x the list path "
        f"(list {list_s:.3f}s, frame {frame_s:.3f}s)")
