"""Columnar frame pipeline vs the per-trial scalar path, Figure-1 shaped.

The workload is the left edge of the paper's Figure-1 grid — exponential
interarrival noise, dithered equal starts, half-and-half inputs, stop at
the first decision — at the paper's per-point trial count (10,000),
swept over small n on the vectorized engine.  Small n is exactly where
per-trial machinery drowns the pipeline, and where the frame path's
batched seeding + inline sampling + columnar sink pay off.

The baseline is the *per-trial* ``run_trial`` loop — the pre-batching
pattern every chunked path is required to stay bit-identical to.  (The
chunked list path itself is no longer an independent implementation: it
delegates to the frame pipeline and reconstructs the dataclass list at
the edge, so comparing against it would only measure that
reconstruction.)

Two properties, asserted at different strengths (mirroring
``test_bench_fast.py``):

* **Identity** — unconditional: the sweep's frames reconstruct the exact
  result list of the per-trial loop, cell by cell.
* **Throughput** — gated on wall-clock sanity: the frame path must be at
  least 2x the per-trial path's trials/sec, asserted only when the
  baseline ran long enough to time stably.  The frame leg is timed
  best-of-3 with the collector paused (the shared-runner boxes show
  multi-x wall-clock spikes from hypervisor neighbors; a single spiked
  run once recorded 1.43x against a 2x gate), matching
  ``benchtool._timed``'s noise discipline.

Metrics are appended to the repo-root ``BENCH_results.json`` trajectory
ledger (uploaded as a CI artifact) so the performance history is
recorded run over run.
"""

import gc
import time

import pytest

from repro import benchtool
from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    SweepAxis,
    SweepSpec,
    TrialSpec,
    run_sweep,
    run_trial,
    trial_seed_sequences,
)

#: The left edge of the Figure-1 grid.  The per-trial baseline is slow,
#: so it runs a sample of the trials and is scaled up; the frame path
#: runs the full paper-scale sweep.
NS = (1, 10)
TRIALS = 10_000
BASELINE_TRIALS = 4_000

SWEEP = SweepSpec(
    base=TrialSpec(n=1, model=NoisyModelSpec(
        noise=NoiseSpec.of("exponential", mean=1.0)),
        engine="fast", stop_after_first_decision=True),
    axes=(SweepAxis("n", NS),),
    trials=TRIALS)

#: Only assert the ratio when the baseline took at least this long.
MIN_SANE_BASELINE_SECONDS = 1.0

MIN_SPEEDUP = 2.0


#: Timed frame-path repetitions; the fastest is the noise-robust figure.
FRAME_REPEATS = 3


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start
    finally:
        gc.enable()


def _timed_best(fn, repeats):
    result, best = _timed(fn)
    for _ in range(repeats - 1):
        _, elapsed = _timed(fn)
        best = min(best, elapsed)
    return result, best


def test_frame_sweep_throughput_vs_per_trial_path(save_report):
    # Warm both paths (imports, allocator, numpy dispatch).
    warm = SweepSpec(base=SWEEP.base, axes=SWEEP.axes, trials=50)
    run_sweep(warm, seed=1)

    # Per-trial baseline: the first BASELINE_TRIALS child seeds of each
    # cell's grid-order block — a prefix of the exact trials the sweep
    # runs (cell i consumes children [i*TRIALS, (i+1)*TRIALS)).
    all_seqs = trial_seed_sequences(2000, TRIALS * len(NS))
    baseline_s = 0.0
    baselines = []
    for i, cell in enumerate(SWEEP.cells()):
        seqs = all_seqs[i * TRIALS:i * TRIALS + BASELINE_TRIALS]
        results, elapsed = _timed(
            lambda: [run_trial(cell.spec, s) for s in seqs])
        baselines.append(results)
        baseline_s += elapsed
    scaled_baseline_s = baseline_s * (TRIALS / BASELINE_TRIALS)

    frames, frame_s = _timed_best(lambda: run_sweep(SWEEP, seed=2000),
                                  FRAME_REPEATS)

    # Identity: the columnar sweep reconstructs the per-trial results
    # exactly, prefix by prefix.
    for baseline, (cell, frame) in zip(baselines, frames):
        rebuilt = frame.to_trial_results()[:BASELINE_TRIALS]
        assert rebuilt == baseline, cell.coords

    total = len(NS) * TRIALS
    baseline_rate = total / max(scaled_baseline_s, 1e-9)
    frame_rate = total / max(frame_s, 1e-9)
    speedup = scaled_baseline_s / max(frame_s, 1e-9)
    sane = baseline_s >= MIN_SANE_BASELINE_SECONDS
    verdict = (f"asserted >= {MIN_SPEEDUP:.1f}x" if sane
               else "not asserted: baseline finished too fast for a "
                    "stable measurement")

    benchtool.append_entry(benchtool.default_ledger_path(), "bench-frame", {
        "frame_vs_per_trial": {
            "workload": ("figure1-shaped sweep: exponential(1), dithered "
                         "starts, stop at first decision, engine=fast"),
            "ns": list(NS),
            "trials_per_point": TRIALS,
            "baseline_trials_per_point": BASELINE_TRIALS,
            "per_trial_seconds_scaled": round(scaled_baseline_s, 3),
            "frame_seconds": round(frame_s, 3),
            "per_trial_trials_per_sec": round(baseline_rate, 1),
            "frame_trials_per_sec": round(frame_rate, 1),
            "speedup": round(speedup, 2),
            "frame_timing": f"best-of-{FRAME_REPEATS}",
            "asserted": bool(sane),
            "min_speedup": MIN_SPEEDUP,
        }
    })

    save_report("frame_speedup", "\n".join([
        f"figure1-shaped sweep, ns={list(NS)}, {TRIALS} trials/point, "
        "engine=fast",
        f"per-trial path (scaled from {BASELINE_TRIALS}/point): "
        f"{scaled_baseline_s:.3f}s ({baseline_rate:,.0f} trials/s)",
        f"columnar frame path: {frame_s:.3f}s ({frame_rate:,.0f} trials/s)",
        f"speedup: {speedup:.2f}x ({verdict})",
    ]))

    if not sane:
        pytest.skip(f"baseline finished in {baseline_s:.3f}s "
                    f"< {MIN_SANE_BASELINE_SECONDS}s; timing too noisy to "
                    "assert a ratio")
    assert speedup >= MIN_SPEEDUP, (
        f"frame path only {speedup:.2f}x the per-trial path "
        f"(scaled baseline {scaled_baseline_s:.3f}s, "
        f"frame {frame_s:.3f}s)")
