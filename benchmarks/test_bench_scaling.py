"""EXP-T12 benchmark: Theorem 12 — Θ(log n) termination + exponential tail.

Expected shape: mean last-decision round fits a·ln(n)+b with a good R² and
small coefficients; P[R > k] decays log-linearly.
"""

import pytest

from repro.experiments import scaling


@pytest.mark.benchmark(group="scaling")
def test_scaling_growth_and_fit(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: scaling.run(ns=(4, 16, 64, 256, 1024), trials=60, seed=2000),
        rounds=1, iterations=1)
    tail = scaling.run_tail(n=128, trials=400, seed=2000)
    save_report("scaling_t12", scaling.format_result(result, tail))

    # Θ(log n): positive slope, decent fit, small constants (paper §9).
    assert result.fit_last.a > 0
    assert result.fit_last.r2 > 0.7
    assert result.mean_last[1024] < 10.0
    # Corollary 11: exponential tail decays.
    assert tail.fit.a < 0


@pytest.mark.benchmark(group="scaling")
def test_scaling_single_n256_batch(benchmark):
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trials

    results = benchmark.pedantic(
        lambda: run_noisy_trials(10, 256, Exponential(1.0), seed=5),
        rounds=1, iterations=1)
    assert all(r.agreed for r in results)
