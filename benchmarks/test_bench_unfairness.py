"""EXP-T1 benchmark: Theorem 1 — unfairness of noisy scheduling.

Expected shape: the mean number of rival operations between two consecutive
operations of a process grows roughly *linearly* in the heavy-tail
truncation level K — each additional tail level contributes a constant
(~1/2) to the expectation, which is exactly how the paper's sum
sum_k 2^-k * Omega(2^k) diverges — while a well-behaved control
distribution stays flat around 1.
"""

import pytest

from repro.experiments import unfairness


@pytest.mark.benchmark(group="unfairness")
def test_unfairness_divergence(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: unfairness.run(caps=(2, 3, 4, 5, 6), trials=300, seed=2000),
        rounds=1, iterations=1)
    save_report("unfairness_t1", unfairness.format_result(result))

    means = [result.heavy[k] for k in result.caps]
    # Divergence: strictly increasing in K, by a non-vanishing amount per
    # level (the theorem's sum adds ~constant mass per tail level).
    assert all(b > a for a, b in zip(means, means[1:]))
    assert means[-1] - means[0] > 0.4
    # The control (exponential) is flat near 1.
    assert result.control == pytest.approx(1.0, abs=0.3)


@pytest.mark.benchmark(group="unfairness")
def test_unfairness_single_measurement(benchmark):
    from repro._rng import make_rng
    from repro.noise import HeavyTail

    value = benchmark(
        lambda: unfairness.mean_interleaved_ops(
            HeavyTail(k_cap=4), trials=50, rng=make_rng(1)))
    assert value > 0
