"""EXP-FAIL benchmark: random halting (§3.1.2) + adaptive crashes (§10).

Expected shape: with random halting the protocol still terminates in
O(log n) rounds among survivors; with an adaptive kill-the-leader adversary
the mean termination round grows roughly linearly in the crash budget f
(the O(f log n) upper bound), with a mild slope (the paper conjectures the
truth is O(log n)).
"""

import pytest

from repro.experiments import failures


@pytest.mark.benchmark(group="failures")
def test_failures_sweeps(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: failures.run(n=64, hs=(0.0, 0.001, 0.005, 0.02),
                             budgets=(0, 1, 2, 4, 8), trials=80, seed=2000),
        rounds=1, iterations=1)
    save_report("failures", failures.format_result(result))

    # Random halting: higher h kills more processes...
    halted = [row.mean_halted for row in result.halting]
    assert halted == sorted(halted)
    # ... while surviving processes still decide in few rounds.
    for row in result.halting:
        if row.mean_last_round is not None:
            assert row.mean_last_round < 12
    # Adaptive crashes: the adversary uses its whole budget...
    assert result.crashes[-1].mean_crashes_used == pytest.approx(
        result.crashes[-1].budget, abs=0.5)
    # ... and rounds grow at most modestly per crash (<< a full restart).
    assert 0 <= result.crash_slope < 3.0


@pytest.mark.benchmark(group="failures")
def test_halting_trial_cost(benchmark):
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trial

    result = benchmark(
        lambda: run_noisy_trial(64, Exponential(1.0), seed=6, h=0.005))
    assert result.agreed
