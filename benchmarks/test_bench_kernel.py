"""Lockstep kernel vs. the trial-batched frame path, Figure-1 shaped.

The workload is the left edge of the paper's Figure-1 grid — exponential
interarrival noise, dithered equal starts, half-and-half inputs, stop at
the first decision — at the paper's per-point trial count (10,000),
the same shape the PR-3 frame benchmark used (then 16.5k trials/sec).
The kernel replaces the per-trial replay loop with one lockstep pass
over the whole chunk, and the n=1 cells collapse to a broadcast (a solo
run is schedule-independent), which is where the bulk of the headroom
comes from.

Two properties, asserted at different strengths (mirroring the earlier
engine benchmarks):

* **Identity** — unconditional: every column of the kernel frames equals
  the frame path's, cell by cell (the acceptance criterion of the
  kernel).
* **Throughput** — gated on wall-clock sanity: the kernel must deliver
  at least 5x the frame path's trials/sec, asserted only when the frame
  path ran long enough to time stably.

A scaling-shaped point (one mid-scale n) is measured alongside for the
trajectory ledger; its speedup is recorded, not asserted (the kernel's
advantage narrows as n grows — see ``KERNEL_AUTO_MAX_N``).

Both workloads come from :mod:`repro.benchtool` (the same functions
``python -m repro bench`` runs) and the metrics are appended to the
repo-root ``BENCH_results.json`` ledger, which CI uploads as an
artifact and checks — warn-only — against the previous entry.
"""

import pytest

from repro import benchtool

#: Only assert the ratio when the frame path took at least this long.
MIN_SANE_FRAME_SECONDS = 1.0

MIN_SPEEDUP = 5.0


def test_kernel_throughput_vs_frame_path(save_report):
    results = benchtool.run_suite()
    fig = results["figure1_shaped"]
    scal = results["scaling_shaped"]
    dists = results["figure1_distributions"]

    # Identity: the kernel frames equal the frame path's, column for
    # column (total_ops, decision fields, decisions/halted payloads).
    assert fig["identical"], "kernel diverged from the frame path"
    assert scal["identical"], "kernel diverged at the scaling point"
    assert dists["identical"], (
        "kernel diverged on a non-exponential Figure-1 lane")

    benchtool.append_entry(benchtool.default_ledger_path(), "bench-ci",
                           results)

    sane = fig["frame_seconds"] >= MIN_SANE_FRAME_SECONDS
    verdict = (f"asserted >= {MIN_SPEEDUP:.1f}x" if sane
               else "not asserted: frame path finished too fast for a "
                    "stable measurement")
    save_report("kernel_speedup", "\n".join([
        f"figure1-shaped sweep, ns={fig['ns']}, "
        f"{fig['trials_per_point']} trials/point",
        f"frame path: {fig['frame_seconds']:.3f}s "
        f"({fig['frame_trials_per_sec']:,.0f} trials/s)",
        f"lockstep kernel: {fig['kernel_seconds']:.3f}s "
        f"({fig['kernel_trials_per_sec']:,.0f} trials/s)",
        f"speedup: {fig['kernel_speedup']:.2f}x ({verdict})",
        f"scaling-shaped n={scal['n']}: {scal['kernel_speedup']:.2f}x "
        "(recorded, not asserted)",
        f"figure1-distributions n={dists['n']}: "
        f"{dists['kernel_speedup']:.2f}x over "
        f"{'/'.join(dists['distributions'])} (recorded, not asserted)",
    ]))

    if not sane:
        pytest.skip(f"frame path finished in {fig['frame_seconds']:.3f}s "
                    f"< {MIN_SANE_FRAME_SECONDS}s; timing too noisy to "
                    "assert a ratio")
    assert fig["kernel_speedup"] >= MIN_SPEEDUP, (
        f"kernel only {fig['kernel_speedup']:.2f}x the frame path "
        f"(frame {fig['frame_seconds']:.3f}s, "
        f"kernel {fig['kernel_seconds']:.3f}s)")
