"""Batch-runner benchmark: the parallel Figure-1-style sweep.

The acceptance target for the batch runner: on a 200-trial n=1000 sweep,
``workers=4`` beats the serial loop by > 1.5x wall-clock while returning
bit-identical results.  The speedup assertion is gated on the machine
actually having >= 4 CPU cores (a 1-core container cannot exhibit a
parallel speedup; determinism is asserted unconditionally).
"""

import os
import time

import pytest

from repro.api import NoiseSpec, NoisyModelSpec, TrialSpec, run_batch

SWEEP_N = 1000
SWEEP_TRIALS = 200

SPEC = TrialSpec(
    n=SWEEP_N,
    model=NoisyModelSpec(noise=NoiseSpec.of("exponential", mean=1.0)),
    stop_after_first_decision=True,
)


def _timed(workers):
    start = time.perf_counter()
    results = run_batch(SPEC, SWEEP_TRIALS, seed=2000, workers=workers)
    return time.perf_counter() - start, results


@pytest.mark.benchmark(group="batch")
def test_batch_parallel_speedup_n1000(benchmark, save_report):
    """Serial vs workers=4 on the 200-trial n=1000 sweep."""
    serial_time, serial = benchmark.pedantic(
        lambda: _timed(None), rounds=1, iterations=1)
    parallel_time, parallel = _timed(4)

    assert parallel == serial, "parallel results must be bit-identical"

    cores = os.cpu_count() or 1
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    save_report(
        "batch_speedup",
        (f"batch runner, n={SWEEP_N}, trials={SWEEP_TRIALS}\n"
         f"cores available : {cores}\n"
         f"serial          : {serial_time:.2f} s\n"
         f"workers=4       : {parallel_time:.2f} s\n"
         f"speedup         : {speedup:.2f}x (target > 1.5x on >= 4 cores)"))

    if cores >= 4:
        assert speedup > 1.5, (
            f"workers=4 speedup {speedup:.2f}x <= 1.5x on a {cores}-core "
            "machine")


@pytest.mark.benchmark(group="batch")
def test_batch_serial_overhead_vs_legacy_loop(benchmark):
    """The spec layer must not slow the serial path down measurably."""
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trials

    def legacy():
        return run_noisy_trials(20, 256, Exponential(1.0), seed=3,
                                stop_after_first_decision=True)

    results = benchmark(legacy)
    assert len(results) == 20
    assert all(r.engine == "fast" for r in results)
