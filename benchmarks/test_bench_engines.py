"""EXP-ABL3 benchmark: engine equivalence and raw throughput.

The fast engine must match the reference engine operation-for-operation on
identical pre-sampled schedules; these benches document the speedup that
makes the paper's n = 100,000 Figure-1 points affordable in pure Python.
"""

import numpy as np
import pytest

from repro._rng import make_rng
from repro.noise import Exponential
from repro.sched.noisy import NoisyScheduler, PresampledScheduler
from repro.sim.engine import NoisyEngine
from repro.sim.fast import replay_lean
from repro.sim.runner import half_and_half, make_machines, make_memory_for

N = 256
MAX_OPS = 200


@pytest.fixture(scope="module")
def shared_schedule():
    sched = NoisyScheduler(Exponential(1.0), make_rng(1234))
    times = sched.presample(N, MAX_OPS)
    inputs = [half_and_half(N)[pid] for pid in range(N)]
    return times, inputs


@pytest.mark.benchmark(group="engines")
def test_reference_engine_throughput(benchmark, shared_schedule):
    times, inputs = shared_schedule

    def run_ref():
        machines = make_machines("lean", dict(enumerate(inputs)))
        memory = make_memory_for(machines)
        return NoisyEngine(machines, memory, PresampledScheduler(times)).run()

    result = benchmark(run_ref)
    assert result.agreed


@pytest.mark.benchmark(group="engines")
def test_fast_engine_throughput(benchmark, shared_schedule):
    times, inputs = shared_schedule

    result = benchmark(lambda: replay_lean(
        times, inputs, stop_after_first_decision=False))
    assert result is not None and result.agreed


@pytest.mark.benchmark(group="engines")
def test_engines_identical_on_shared_schedule(benchmark, shared_schedule,
                                              save_report):
    """The equivalence check itself, timed; also saves a summary report."""
    times, inputs = shared_schedule

    def both():
        machines = make_machines("lean", dict(enumerate(inputs)))
        memory = make_memory_for(machines)
        ref = NoisyEngine(machines, memory, PresampledScheduler(times)).run()
        fast = replay_lean(times, inputs, stop_after_first_decision=False)
        return ref, fast

    ref, fast = benchmark.pedantic(both, rounds=1, iterations=1)
    assert fast is not None
    assert {p: d.value for p, d in fast.decisions.items()} == \
        {p: d.value for p, d in ref.decisions.items()}
    assert {p: d.ops for p, d in fast.decisions.items()} == \
        {p: d.ops for p, d in ref.decisions.items()}
    assert fast.total_ops == ref.total_ops
    save_report("engine_equivalence", "\n".join([
        f"n = {N}, shared presampled schedule ({MAX_OPS} ops horizon)",
        f"reference engine: total_ops={ref.total_ops} "
        f"last_round={ref.last_decision_round}",
        f"fast engine:      total_ops={fast.total_ops} "
        f"last_round={fast.last_decision_round}",
        "decision maps identical: yes",
    ]))


@pytest.mark.benchmark(group="engines")
def test_presample_cost_n10000(benchmark):
    sched = NoisyScheduler(Exponential(1.0), make_rng(77))
    times = benchmark(lambda: sched.presample(10_000, 120))
    assert times.shape == (10_000, 120)


@pytest.mark.benchmark(group="engines")
def test_fast_replay_cost_n10000(benchmark):
    sched = NoisyScheduler(Exponential(1.0), make_rng(78))
    times = sched.presample(10_000, 120)
    inputs = np.array([half_and_half(10_000)[pid] for pid in range(10_000)])

    result = benchmark.pedantic(
        lambda: replay_lean(times, list(inputs),
                            stop_after_first_decision=True),
        rounds=1, iterations=1)
    assert result is not None
