"""EXP-MP / EXP-STAT / EXP-CONT / EXP-ID benchmarks (Section-10 extensions).

Expected shapes:

* EXP-MP — lean-consensus over the ABD register emulation still decides in
  few rounds; a crashed server minority changes nothing qualitatively.
* EXP-STAT — burst schedules within the sum Delta <= r*M budget do not
  blow up termination (the paper's conjecture, measured).
* EXP-CONT — moderate contention penalties leave termination rounds flat
  or better (the paper's "contention may help" intuition), while charging
  real stall time.
* EXP-ID — id consensus costs about one binary instance per id bit.
"""

import pytest

from repro.experiments import extensions, message_passing


@pytest.mark.benchmark(group="extensions")
def test_message_passing_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: message_passing.run(ns=(2, 4, 8, 16), trials=15, seed=2000),
        rounds=1, iterations=1)
    save_report("message_passing", message_passing.format_result(result))

    # Safety always; termination bounded.  Note the measured nuance: a
    # quorum transaction's latency is a *maximum* over server replies, so
    # per-operation times concentrate and dispersal slows — tiny client
    # counts need tens of rounds (consistent with the renewal-race E[R]
    # ~ 31 at n=2 for low-variance increments), while larger n is faster.
    for row in result.rows + result.crash_rows:
        assert row.agreement_rate == 1.0
        assert row.mean_last_round < 60
    # Crashing a server minority does not change the round-count shape
    # (it *reduces* latency concentration: fewer replies per quorum).
    for plain, crashed in zip(result.rows, result.crash_rows):
        assert crashed.mean_last_round < plain.mean_last_round + 5


@pytest.mark.benchmark(group="extensions")
def test_statistical_and_contention_and_id(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: extensions.run(n=32, trials=40, seed=2000),
        rounds=1, iterations=1)
    save_report("extensions", extensions.format_result(result))

    # EXP-STAT: all schedules safe; rounds stay in the O(log n) ballpark.
    for row in result.statistical:
        assert row.agreement_rate == 1.0
        assert row.mean_last_round < 16
    # EXP-CONT: safety for all penalties; stalls were actually charged.
    penalties = {r.penalty: r for r in result.contention}
    assert all(r.agreement_rate == 1.0 for r in result.contention)
    assert penalties[1.0].mean_total_penalty > 0
    # The paper's conjecture: contention does not hurt much (and often
    # helps); allow a generous margin either way.
    assert penalties[1.0].mean_last_round < \
        penalties[0.0].mean_last_round + 3
    # EXP-ID: winner always a real participant, cost grows with bits.
    assert all(r.winner_always_valid for r in result.id_consensus)
    ops = [r.mean_ops_per_proc for r in result.id_consensus]
    assert ops == sorted(ops)


@pytest.mark.benchmark(group="extensions")
def test_mp_single_trial_cost(benchmark):
    from repro.netsim import run_mp_trial
    from repro.noise import Exponential

    trial = benchmark(lambda: run_mp_trial(8, Exponential(1.0), seed=5))
    assert trial.agreed
