"""Fast-engine benchmark at the paper's large-n scale (n = 10,000).

Two properties, asserted at different strengths:

* **Determinism** — unconditional: the same spec + seed produces
  bit-identical results on repeated fast runs, and the trial-batched
  chunk path matches serial per-trial execution exactly.
* **Speedup** — gated on wall-clock sanity: the vectorized replay must
  beat the event engine on the same workload, but only when the host was
  not so loaded (or so fast) that the timings are noise.  CI runs this
  file as a non-blocking job.

The equivalence itself (same schedules -> same results) is covered by the
differential oracle tests; this file documents the *price* of the event
engine that makes the fast family necessary.
"""

import time

import pytest

from repro.api import (
    NoiseSpec,
    NoisyModelSpec,
    TrialSpec,
    run_batch,
    run_trial,
    trial_seed_sequences,
)

N = 10_000

SPEC = TrialSpec(n=N, model=NoisyModelSpec(
    noise=NoiseSpec.of("exponential", mean=1.0)),
    stop_after_first_decision=True)

#: Only assert the speedup when the event engine took at least this long
#: (below it, timer noise and interpreter warm-up dominate).
MIN_SANE_EVENT_SECONDS = 0.25

#: The vectorized replay measures ~3-4x end-to-end on this workload (the
#: presample + prefix argsort are its floor); 2x keeps the assertion
#: robust on slow or loaded CI hosts.
MIN_SPEEDUP = 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_fast_engine_determinism_n10000():
    """Bit-identical repeated runs and serial/chunked agreement."""
    fast = SPEC.replace(engine="fast")
    first = run_trial(fast, seed=2000)
    second = run_trial(fast, seed=2000)
    assert first == second
    assert first.engine == "fast"

    chunked = run_batch(fast, 3, seed=2000)
    serial = [run_trial(fast, seq) for seq in trial_seed_sequences(2000, 3)]
    assert chunked == serial


def test_fast_engine_speedup_n10000(save_report):
    fast_result, fast_s = _timed(
        lambda: run_trial(SPEC.replace(engine="fast"), seed=2000))
    event_result, event_s = _timed(
        lambda: run_trial(SPEC.replace(engine="event"), seed=2000))
    assert fast_result.engine == "fast" and fast_result.agreed
    assert event_result.engine == "event" and event_result.agreed

    speedup = event_s / max(fast_s, 1e-9)
    sane = event_s >= MIN_SANE_EVENT_SECONDS
    verdict = (f"asserted >= {MIN_SPEEDUP:.1f}x" if sane
               else "not asserted: event run finished too fast for a "
                    "stable measurement")
    save_report("fast_engine_speedup", "\n".join([
        f"n = {N}, exponential(1) noise, stop at first decision",
        f"event engine: {event_s:.3f}s "
        f"(first decision round {event_result.first_decision_round})",
        f"fast engine:  {fast_s:.3f}s "
        f"(first decision round {fast_result.first_decision_round})",
        f"speedup: {speedup:.1f}x ({verdict})",
    ]))
    if not sane:
        pytest.skip(f"event engine finished in {event_s:.3f}s "
                    f"< {MIN_SANE_EVENT_SECONDS}s; timing too noisy "
                    "to assert a ratio")
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine only {speedup:.1f}x faster than the event engine "
        f"(event {event_s:.3f}s, fast {fast_s:.3f}s)")
