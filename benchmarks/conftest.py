"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (Figure 1, a theorem claim,
or an ablation) at a laptop-friendly scale, times it with pytest-benchmark,
and writes the paper-shaped table to ``benchmarks/results/<name>.txt`` so
the numbers survive the run.  EXPERIMENTS.md records a full-scale pass.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(report_dir):
    """Write an experiment table to results/<name>.txt (and echo it)."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _save
