"""EXP-T15 benchmark: Theorem 15 — the bounded-space combined protocol.

Expected shape: with r_max = Θ(log² n) the backup never runs at this scale
and the combined protocol's cost matches plain lean-consensus to within a
small constant; with a tiny r_max the backup runs constantly and agreement
still holds (including mixed main/backup decisions).
"""

import pytest

from repro.experiments import bounded_space


@pytest.mark.benchmark(group="bounded-space")
def test_bounded_space_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: bounded_space.run(ns=(4, 16, 64, 256), trials=60,
                                  stress_trials=40, seed=2000),
        rounds=1, iterations=1)
    save_report("bounded_t15", bounded_space.format_result(result))

    for row in result.rows:
        assert row.agreement_rate == 1.0
        assert row.max_main_round <= row.r_max
        # Backup essentially never runs at the suggested cutoff.
        assert row.backup_trials == 0
        # Combined cost within a small constant of plain lean-consensus.
        assert row.mean_total_ops <= 2.0 * row.mean_total_ops_plain
    for row in result.stress_rows:
        assert row.agreement_rate == 1.0
        assert row.backup_trials > 0  # the stress cutoff forces the backup


@pytest.mark.benchmark(group="bounded-space")
def test_bounded_single_trial(benchmark):
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trial

    result = benchmark(
        lambda: run_noisy_trial(64, Exponential(1.0), seed=5,
                                protocol="bounded", engine="event"))
    assert result.agreed
