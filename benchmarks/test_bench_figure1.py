"""EXP-F1 benchmark: regenerate Figure 1.

The paper's figure: mean round of first termination vs n (log-x grid up to
100,000), six interarrival distributions, half-and-half inputs.  The bench
grid keeps the run in minutes; pass ``--paper`` to the CLI harness
(``python -m repro.experiments.figure1 --paper``) for the full 10,000-trial
grid.  Expected shape (paper Section 9): slow logarithmic growth with small
constants for five distributions and a *decreasing* curve for the truncated
normal at large n.
"""

import pytest

from repro.experiments import figure1

BENCH_NS = (1, 10, 100, 1_000, 10_000)
BENCH_TRIALS = 40


@pytest.mark.benchmark(group="figure1")
def test_figure1_full_sweep(benchmark, save_report):
    """Time the whole (reduced-scale) Figure-1 sweep and save the table."""
    result = benchmark.pedantic(
        lambda: figure1.run(ns=BENCH_NS, trials=BENCH_TRIALS, seed=2000),
        rounds=1, iterations=1)
    table = figure1.format_result(result)
    save_report("figure1", table + "\n\n" + figure1.ascii_plot(result))

    # Shape checks mirroring the paper's qualitative claims.
    expo = {p.n: p.mean_round for p in result.series["exponential(1)"]}
    norm = {p.n: p.mean_round for p in result.series["normal(1,0.04)"]}
    assert expo[1] == pytest.approx(2.0)          # Lemma 3 solo case
    assert expo[10_000] < 8.0                      # small constants
    assert expo[10_000] >= expo[10] - 0.5          # non-decreasing-ish
    assert norm[10_000] < norm[10]                 # the inverted normal curve


@pytest.mark.benchmark(group="figure1")
def test_figure1_single_point_n1000_fast_engine(benchmark):
    """Per-point cost at n=1000 on the vectorized engine."""
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trial

    def point():
        return run_noisy_trial(1000, Exponential(1.0), seed=7,
                               engine="fast",
                               stop_after_first_decision=True)

    result = benchmark(point)
    assert result.first_decision_round is not None


@pytest.mark.benchmark(group="figure1")
def test_figure1_single_point_n64_event_engine(benchmark):
    """Per-point cost at n=64 on the reference engine."""
    from repro.noise import Exponential
    from repro.sim.runner import run_noisy_trial

    def point():
        return run_noisy_trial(64, Exponential(1.0), seed=8,
                               engine="event",
                               stop_after_first_decision=True)

    result = benchmark(point)
    assert result.first_decision_round is not None
