"""EXP-T14 benchmark: Theorem 14 — hybrid scheduling decides in <= 12 ops.

Expected shape: the exhaustive adversarial search shows the guarantee
holding from the paper's quantum threshold (8) upward — in this
formalization it already holds at 7 — and failing (truncation/lockstep)
below; randomized larger-n schedules never exceed 12 operations.
"""

import pytest

from repro.experiments import hybrid


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_exhaustive_quantum_sweep(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: hybrid.run(exhaustive_n=2, quanta=(4, 6, 7, 8, 9, 10),
                           randomized_ns=(4, 16, 64), trials=40,
                           include_permissive=True, seed=2000),
        rounds=1, iterations=1)
    save_report("hybrid_t14", hybrid.format_result(result))

    by_quantum = {r.quantum: r for r in result.sweep}
    # Paper: quantum >= 8 guarantees <= 12 ops.  Verified exhaustively.
    for q in (8, 9, 10):
        assert by_quantum[q].max_decision_ops <= 12
        assert not by_quantum[q].truncated
        assert by_quantum[q].safe
    # Small quanta admit lockstep (no bound).
    assert by_quantum[4].truncated
    # Randomized schedules never exceed the bound either.
    assert all(v <= 12 for v in result.randomized_max_ops.values())
    # The permissive debt reading measurably breaks the 12-op bound.
    assert result.permissive_max_ops is not None
    assert result.permissive_max_ops > 12


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_exhaustive_n3(benchmark):
    rows = benchmark.pedantic(
        lambda: hybrid.exhaustive_sweep(n=3, quanta=(8,), budget=16),
        rounds=1, iterations=1)
    assert rows[0].max_decision_ops <= 12
    assert not rows[0].truncated


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_single_trial_n16(benchmark):
    from repro.sim.runner import run_hybrid_trial

    result = benchmark(lambda: run_hybrid_trial(16, quantum=8, seed=4))
    assert all(d.ops <= 12 for d in result.decisions.values())
